// Cayley-graph recognition: the "test whether G is a Cayley graph
// (time-consuming, but decidable)" step of Section 4.
//
// By Sabidussi's theorem, G is a Cayley graph iff Aut(G) contains a
// *regular* subgroup: one acting sharply transitively on the nodes
// (equivalently: transitive, with every non-identity element fixed-point
// free).  We enumerate Aut(G) explicitly and search for regular subgroups
// by incremental closure with semiregularity pruning.
//
// A single graph can be a Cayley graph of several non-isomorphic groups
// (C_4 realizes both Z_4 and Z_2 x Z_2), and the distinction matters:
// the effectual election test must consider *every* regular subgroup, not
// one canonical choice -- see translation.hpp for why (a documented gap in
// the paper's Theorem 4.1 as literally stated).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "qelect/graph/graph.hpp"
#include "qelect/group/cayley_graph.hpp"
#include "qelect/group/group.hpp"
#include "qelect/iso/colored_digraph.hpp"

namespace qelect::cayley {

using graph::NodeId;
using Permutation = std::vector<NodeId>;

/// A regular subgroup of Aut(G), stored with its elements indexed by the
/// image of node 0: element(v) is the unique member mapping node 0 to v.
/// element(0) is the identity.
class RegularSubgroup {
 public:
  explicit RegularSubgroup(std::vector<Permutation> by_image);

  std::size_t order() const { return by_image_.size(); }
  const Permutation& element(NodeId v) const { return by_image_[v]; }
  const std::vector<Permutation>& elements() const { return by_image_; }

  /// Stable identity for dedup: the sorted list of member permutations.
  std::vector<Permutation> sorted_members() const;

 private:
  std::vector<Permutation> by_image_;  // by_image_[v](0) == v
};

/// Outcome of recognition.
struct RecognitionResult {
  bool is_cayley = false;
  std::size_t aut_order = 0;          // |Aut(G)| (0 if enumeration aborted)
  bool aut_enumeration_complete = true;
  std::vector<RegularSubgroup> regular_subgroups;  // deduplicated, all found
};

/// Finds regular subgroups of Aut(G).  `max_subgroups` bounds the list
/// (recognition only needs one; the effectual test wants all); `aut_limit`
/// bounds the automorphism enumeration.  If the automorphism group is
/// larger than `aut_limit` the result reports an incomplete enumeration and
/// is_cayley=false conservatively.
RecognitionResult recognize_cayley(const graph::Graph& g,
                                   std::size_t max_subgroups = 1u << 12,
                                   std::size_t aut_limit = 1u << 18);

/// Sabidussi reconstruction: abstract group plus generating set realizing
/// `g` as Cay(Gamma, S) (node v <-> the element mapping 0 to v; generators
/// are the elements whose image of 0 neighbors 0).  The reconstructed
/// Cayley graph is isomorphic to `g` (tests verify this round trip).
struct ReconstructedCayley {
  group::Group gamma;
  std::vector<group::Elem> generators;
};
ReconstructedCayley reconstruct_group(const graph::Graph& g,
                                      const RegularSubgroup& r);

/// Groups regular subgroups into conjugacy classes under the full
/// automorphism group: R1 ~ R2 iff phi R1 phi^-1 = R2 for some phi in
/// `automorphisms`.  Conjugate subgroups are "the same group structure
/// seen through a symmetry" -- the effectual test's obstruction values
/// |R_p| can still differ across a class because p breaks the symmetry,
/// which is why the test quantifies over subgroups rather than classes.
/// Returns indices into `subgroups`, grouped.
std::vector<std::vector<std::size_t>> conjugacy_classes_of_subgroups(
    const std::vector<RegularSubgroup>& subgroups,
    const std::vector<Permutation>& automorphisms);

}  // namespace qelect::cayley
