// Translation-equivalence classes and the effectual-election test for
// Cayley graphs (Section 4).
//
// Fix a regular subgroup R <= Aut(G) (one group structure on G).  Because R
// acts sharply transitively there is a *unique* translation mapping x to y;
// x and y are translation-equivalent w.r.t. (R, p) iff that translation
// preserves the bi-coloring.  The color-preserving translations form the
// subgroup R_p = { rho in R : rho(home-bases) = home-bases }, the classes
// are the orbits of R_p, and -- since the action is free -- *all classes
// have size |R_p|*; hence gcd(|C_1|, ..., |C_k|) = |R_p|.
//
// DOCUMENTED DEVIATION FROM THE PAPER (see DESIGN.md / EXPERIMENTS.md):
// Theorem 4.1 as literally stated lets the agents "select" one group for G
// and decide by the gcd of that group's translation classes.  That is not
// sound: (C_4, {0,1}) has gcd 1 w.r.t. Gamma = Z_4, yet election is
// impossible -- C_4 is also Cay(Z_2 x Z_2, *), whose natural labeling makes
// every ~lab class have size 2, so Theorem 2.1 applies.  The corrected
// test quantifies over every regular subgroup: election on a Cayley (G, p)
// is impossible iff SOME regular subgroup has |R_p| > 1.  The library
// implements the corrected test and the tests validate it exhaustively on
// small Cayley graphs against the plain-ELECT condition gcd(~classes) = 1.
#pragma once

#include <cstdint>
#include <vector>

#include "qelect/cayley/recognition.hpp"
#include "qelect/graph/placement.hpp"

namespace qelect::cayley {

/// The translation-class decomposition of (G, p) w.r.t. one regular
/// subgroup.
struct TranslationClasses {
  /// Orbits of R_p, each of size `stabilizer_order`; ordered by smallest
  /// member node.
  std::vector<std::vector<NodeId>> classes;
  /// |R_p| = the common class size = gcd of the class sizes.
  std::size_t stabilizer_order = 0;
};

/// Computes the translation classes of placement `p` under `r`.
TranslationClasses translation_classes(const RegularSubgroup& r,
                                       const graph::Placement& p);

/// |R_p| for one regular subgroup.
std::size_t color_preserving_translation_count(const RegularSubgroup& r,
                                               const graph::Placement& p);

/// The corrected effectual impossibility test: max |R_p| over all supplied
/// regular subgroups.  > 1 means election on (G, p) is impossible
/// (Theorem 4.1's construction yields a labeling with all ~lab classes of
/// that size); == 1 means no translation-based obstruction exists.
std::size_t max_translation_obstruction(
    const std::vector<RegularSubgroup>& subgroups, const graph::Placement& p);

}  // namespace qelect::cayley
