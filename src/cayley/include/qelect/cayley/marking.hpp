// The iterative edge-marking process from the proof of Theorem 4.1.
//
// Given Cay(Gamma, S) and a placement p, the proof refines the translation
// classes into the label-equivalence classes of the natural Cayley labeling
// by repeatedly picking two connected pseudo-classes C, C' of different
// sizes and a generator s carrying C into C', then splitting C' into Cs and
// C' \ Cs.  Two invariants drive the argument:
//
//   (1) marked edges only ever join equal-size pseudo-classes, and
//   (2) the gcd of the pseudo-class sizes never changes (Euclid:
//       gcd(|C|, |C'|) = gcd(|C|, |C'| - |C|)),
//
// so the process terminates with all classes of size d = |R_p| and the
// natural labeling witnesses Theorem 2.1's impossibility premise when
// d > 1.  This module executes the process literally, checks both
// invariants at every step, and returns the full trace (the
// bench_effectual_cayley binary prints it).
#pragma once

#include <cstdint>
#include <vector>

#include "qelect/graph/placement.hpp"
#include "qelect/group/cayley_graph.hpp"

namespace qelect::cayley {

/// Where the refinement starts.
///
/// The paper's process starts from the translation classes -- but those are
/// orbits of a *free* action, hence all of size |R_p| already, so the
/// iteration loop never fires (a subtlety the proof text glosses over; we
/// document it as a reproduction finding).  The EquivalenceClasses mode is
/// the library's exploration: start from the coarser ~ classes (which can
/// have unequal sizes) and watch the Euclid-style splitting actually run.
/// In that mode the tracked pseudo-classes are an over-approximation of
/// the true ~lab classes, the gcd invariant still holds, and the process
/// may legitimately stop early (all sizes equal above |R_p|) or find no
/// admissible pair; the result reports this instead of throwing.
enum class MarkingStart {
  TranslationClasses,
  EquivalenceClasses,
};

/// One refinement step of the marking process.
struct MarkingStep {
  group::Elem generator = 0;        // the s used
  std::size_t from_class_size = 0;  // |C|  (smaller class)
  std::size_t split_class_size = 0; // |C'| (class split into Cs, C'\Cs)
  std::size_t edges_marked = 0;     // |C| edges marked this step
};

/// The trace and outcome of the process.
struct MarkingResult {
  /// Final pseudo-classes; all have size `final_class_size` when completed.
  std::vector<std::vector<graph::NodeId>> final_classes;
  /// The common final size: |R_p| for the translation start; the gcd of the
  /// initial class sizes for the coarse start.
  std::size_t final_class_size = 0;
  std::vector<MarkingStep> steps;
  /// False only in EquivalenceClasses mode when the tracked bookkeeping hit
  /// a coarse-partition incoherence (s-edges of one pseudo-class landing in
  /// different classes) before the sizes equalized.
  bool completed = true;
};

/// Runs the Theorem 4.1 marking process on (cg, p).  In the
/// TranslationClasses mode, throws CheckError if any of the proof's
/// invariants fails (which would falsify the theorem).
MarkingResult theorem41_marking(
    const group::CayleyGraph& cg, const graph::Placement& p,
    MarkingStart start = MarkingStart::TranslationClasses);

}  // namespace qelect::cayley
