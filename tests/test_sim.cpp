// Unit tests for the simulator: qualitative colors, whiteboards, the
// coroutine runtime, scheduler policies, accounting, and deadlock handling.
#include <gtest/gtest.h>

#include <memory>

#include "qelect/graph/families.hpp"
#include "qelect/sim/behavior.hpp"
#include "qelect/sim/color.hpp"
#include "qelect/sim/replay.hpp"
#include "qelect/sim/scheduler.hpp"
#include "qelect/sim/whiteboard.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/trace/sink.hpp"
#include "qelect/util/assert.hpp"

namespace qelect::sim {
namespace {

template <typename T>
concept LessThanComparable = requires(T a, T b) { a < b; };
// Compile-time guarantee of the qualitative model: colors expose equality
// and nothing else.
static_assert(!LessThanComparable<Color>,
              "qualitative colors must not expose an ordering");

TEST(Color, DistinctAndEqualityOnly) {
  ColorUniverse u(123);
  const Color a = u.mint();
  const Color b = u.mint();
  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(Color{}, Color{});
  EXPECT_NE(a, Color{});
}

TEST(Color, MintManyAllDistinct) {
  ColorUniverse u(7);
  const auto colors = u.mint_many(50);
  for (std::size_t i = 0; i < colors.size(); ++i) {
    for (std::size_t j = i + 1; j < colors.size(); ++j) {
      EXPECT_NE(colors[i], colors[j]);
    }
  }
}

TEST(Color, IndexIsFirstSeen) {
  ColorUniverse u(9);
  const Color a = u.mint(), b = u.mint();
  ColorIndex idx;
  EXPECT_EQ(idx.index_of(b), 0u);
  EXPECT_EQ(idx.index_of(a), 1u);
  EXPECT_EQ(idx.index_of(b), 0u);
  EXPECT_TRUE(idx.contains(a));
  EXPECT_EQ(idx.size(), 2u);
}

TEST(Whiteboard, PostFindCountErase) {
  ColorUniverse u(1);
  const Color a = u.mint(), b = u.mint();
  Whiteboard wb;
  wb.post(Sign{a, 5, {1}});
  wb.post(Sign{b, 5, {2}});
  wb.post(Sign{a, 6, {}});
  EXPECT_EQ(wb.count_tag(5), 2u);
  EXPECT_EQ(wb.distinct_colors_with_tag(5), 2u);
  ASSERT_NE(wb.find(5, b), nullptr);
  EXPECT_EQ(wb.find(5, b)->payload.front(), 2);
  EXPECT_TRUE(wb.find_tag(6)->color == a);
  EXPECT_EQ(wb.erase_if([](const Sign& s) { return s.tag == 5; }), 2u);
  EXPECT_EQ(wb.count_tag(5), 0u);
}

TEST(Whiteboard, DistinctColorsDedups) {
  ColorUniverse u(2);
  const Color a = u.mint();
  Whiteboard wb;
  wb.post(Sign{a, 9, {}});
  wb.post(Sign{a, 9, {}});
  EXPECT_EQ(wb.count_tag(9), 2u);
  EXPECT_EQ(wb.distinct_colors_with_tag(9), 1u);
}

// A trivial protocol: mark the home board, walk around a ring once, finish.
Behavior ring_walker(AgentCtx& ctx) {
  co_await ctx.board([&](Whiteboard& wb) {
    wb.post(Sign{ctx.self(), 50, {}});
  });
  for (int i = 0; i < 6; ++i) {
    co_await ctx.move(0);
  }
  ctx.declare_leader();
}

TEST(World, RunsSingleAgentToCompletion) {
  World w(graph::ring(6), graph::Placement(6, {2}), 42);
  const RunResult r = w.run([](AgentCtx& ctx) { return ring_walker(ctx); },
                            RunConfig{});
  EXPECT_TRUE(r.completed);
  ASSERT_EQ(r.agents.size(), 1u);
  EXPECT_EQ(r.agents[0].status, AgentStatus::Leader);
  EXPECT_EQ(r.agents[0].moves, 6u);
  EXPECT_EQ(r.agents[0].board_accesses, 1u);
  EXPECT_EQ(r.agents[0].final_position, 2u);  // full loop returns home
  EXPECT_EQ(r.total_moves, 6u);
}

TEST(World, HomeBaseSignsPrePosted) {
  World w(graph::ring(5), graph::Placement(5, {1, 3}), 5);
  const RunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        co_await ctx.yield();
        ctx.declare_failure_detected();
      },
      RunConfig{});
  EXPECT_TRUE(r.completed);
  EXPECT_NE(w.board_at(1).find_tag(kTagHomeBase), nullptr);
  EXPECT_NE(w.board_at(3).find_tag(kTagHomeBase), nullptr);
  EXPECT_EQ(w.board_at(0).find_tag(kTagHomeBase), nullptr);
}

TEST(World, WaitUntilBlocksUntilSignAppears) {
  // Agent 0 waits for a sign at its node; agent 1 walks over and posts it.
  const graph::Graph g = graph::path(2);
  World w(g, graph::Placement(2, {0, 1}), 3);
  const auto colors = w.agent_colors();
  const Color waiter_color = colors[0];
  const RunResult r = w.run(
      [waiter_color](AgentCtx& ctx) -> Behavior {
        if (ctx.self() == waiter_color) {
          co_await ctx.wait_until([](const Whiteboard& wb) {
            return wb.find_tag(77) != nullptr;
          });
          ctx.declare_leader();
        } else {
          co_await ctx.move(0);
          co_await ctx.board([&](Whiteboard& wb) {
            wb.post(Sign{ctx.self(), 77, {}});
          });
          ctx.declare_defeated(waiter_color);
        }
      },
      RunConfig{});
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.clean_election());
}

TEST(World, DeadlockDetected) {
  World w(graph::ring(4), graph::Placement(4, {0}), 8);
  const RunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        co_await ctx.wait_until(
            [](const Whiteboard& wb) { return wb.count_tag(999) > 0; });
      },
      RunConfig{});
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.deadlock);
}

TEST(World, StepLimitHonored) {
  World w(graph::ring(4), graph::Placement(4, {0}), 8);
  RunConfig cfg;
  cfg.max_steps = 10;
  const RunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        for (;;) co_await ctx.move(0);
      },
      cfg);
  EXPECT_TRUE(r.step_limit);
  EXPECT_EQ(r.steps, 10u);
}

TEST(World, MoveThroughBadPortThrows) {
  World w(graph::ring(4), graph::Placement(4, {0}), 8);
  EXPECT_THROW(w.run(
                   [](AgentCtx& ctx) -> Behavior {
                     co_await ctx.move(9);
                   },
                   RunConfig{}),
               CheckError);
}

TEST(World, QuantitativeIdsDistinct) {
  World w = World::quantitative(graph::ring(5), graph::Placement(5, {0, 2, 4}),
                                11);
  auto seen = std::make_shared<std::vector<std::int64_t>>();
  const RunResult r = w.run(
      [seen](AgentCtx& ctx) -> Behavior {
        seen->push_back(*ctx.quantitative_id());
        co_await ctx.yield();
        ctx.declare_failure_detected();
      },
      RunConfig{});
  EXPECT_TRUE(r.completed);
  ASSERT_EQ(seen->size(), 3u);
  EXPECT_NE((*seen)[0], (*seen)[1]);
  EXPECT_NE((*seen)[1], (*seen)[2]);
  EXPECT_NE((*seen)[0], (*seen)[2]);
}

TEST(World, QualitativeWorldHasNoIds) {
  World w(graph::ring(4), graph::Placement(4, {0}), 8);
  const RunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        EXPECT_FALSE(ctx.quantitative_id().has_value());
        co_await ctx.yield();
        ctx.declare_leader();
      },
      RunConfig{});
  EXPECT_TRUE(r.completed);
}

TEST(World, EntryPortReported) {
  const graph::Graph g = graph::ring(4);  // port 0 = +1, port 1 = -1
  World w(g, graph::Placement(4, {0}), 8);
  const RunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        EXPECT_FALSE(ctx.entry_port().has_value());
        co_await ctx.move(0);
        EXPECT_EQ(*ctx.entry_port(), 1u);  // entered node 1 via its -1 port
        ctx.declare_leader();
      },
      RunConfig{});
  EXPECT_TRUE(r.completed);
}

// Nested Task plumbing: subroutines that themselves await actions.
Task<int> count_moves(AgentCtx& ctx, int hops) {
  for (int i = 0; i < hops; ++i) co_await ctx.move(0);
  co_return hops;
}
Task<int> double_hop(AgentCtx& ctx) {
  const int a = co_await count_moves(ctx, 2);
  const int b = co_await count_moves(ctx, 3);
  co_return a + b;
}

TEST(World, NestedTasksExecuteActions) {
  World w(graph::ring(6), graph::Placement(6, {0}), 4);
  const RunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        const int total = co_await double_hop(ctx);
        EXPECT_EQ(total, 5);
        ctx.declare_leader();
      },
      RunConfig{});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.agents[0].moves, 5u);
  EXPECT_EQ(r.agents[0].final_position, 5u);
}

TEST(World, ProtocolExceptionPropagates) {
  World w(graph::ring(4), graph::Placement(4, {0}), 8);
  EXPECT_THROW(w.run(
                   [](AgentCtx& ctx) -> Behavior {
                     co_await ctx.yield();
                     QELECT_CHECK(false, "protocol bug");
                   },
                   RunConfig{}),
               CheckError);
}

TEST(World, SchedulerPoliciesAllComplete) {
  for (const SchedulerPolicy policy :
       {SchedulerPolicy::Random, SchedulerPolicy::RoundRobin,
        SchedulerPolicy::Lockstep}) {
    World w(graph::ring(6), graph::Placement(6, {0, 2, 4}), 21);
    RunConfig cfg;
    cfg.policy = policy;
    const RunResult r = w.run(
        [](AgentCtx& ctx) -> Behavior {
          for (int i = 0; i < 6; ++i) co_await ctx.move(0);
          ctx.declare_failure_detected();
        },
        cfg);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.total_moves, 18u);
  }
}

TEST(World, RandomSchedulerIsSeedDeterministic) {
  auto run_trace = [](std::uint64_t seed) {
    World w(graph::ring(6), graph::Placement(6, {0, 3}), 9);
    RunConfig cfg;
    cfg.seed = seed;
    w.run(
        [](AgentCtx& ctx) -> Behavior {
          for (int i = 0; i < 10; ++i) {
            co_await ctx.move(0);
            co_await ctx.board([&](Whiteboard& wb) {
              wb.post(Sign{ctx.self(), 33, {}});
            });
          }
          ctx.declare_failure_detected();
        },
        cfg);
    std::vector<std::size_t> counts;
    for (graph::NodeId v = 0; v < 6; ++v) {
      counts.push_back(w.board_at(v).count_tag(33));
    }
    return counts;
  };
  EXPECT_EQ(run_trace(1), run_trace(1));
}

TEST(World, RerunResetsState) {
  World w(graph::ring(4), graph::Placement(4, {0}), 8);
  const Protocol p = [](AgentCtx& ctx) -> Behavior {
    co_await ctx.board([&](Whiteboard& wb) {
      wb.post(Sign{ctx.self(), 44, {}});
    });
    ctx.declare_leader();
  };
  w.run(p, RunConfig{});
  w.run(p, RunConfig{});
  EXPECT_EQ(w.board_at(0).count_tag(44), 1u);  // not 2: boards reset
}

TEST(World, SinkReceivesEveryStep) {
  World w(graph::ring(5), graph::Placement(5, {0, 2}), 4);
  trace::VectorSink sink;
  RunConfig cfg;
  cfg.sink = &sink;
  const RunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        co_await ctx.board([&](Whiteboard& wb) {
          wb.post(Sign{ctx.self(), 60, {}});
        });
        for (int i = 0; i < 3; ++i) co_await ctx.move(0);
        ctx.declare_failure_detected();
      },
      cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(sink.events().size(), r.steps);
  std::size_t moves = 0, boards = 0;
  for (const TraceEvent& e : sink.events()) {
    if (e.kind == TraceEvent::Kind::Move) ++moves;
    if (e.kind == TraceEvent::Kind::Board) ++boards;
    EXPECT_LT(e.agent, 2u);
    EXPECT_LT(e.node, 5u);
  }
  EXPECT_EQ(moves, r.total_moves);
  EXPECT_EQ(boards, r.total_board_accesses);
  EXPECT_EQ(sink.metadata().agent_count, 2u);
  EXPECT_EQ(sink.metadata().policy, "random");
  EXPECT_EQ(sink.summary().steps, r.steps);
  EXPECT_TRUE(sink.summary().completed);
}

// A contention-heavy protocol for the determinism tests: agents race
// around the ring posting signs and wait for each other's marks.
Behavior racing_protocol(AgentCtx& ctx) {
  for (int lap = 0; lap < 4; ++lap) {
    co_await ctx.board([&](Whiteboard& wb) {
      wb.post(Sign{ctx.self(), 70, {lap}});
    });
    co_await ctx.move(0);
    co_await ctx.yield();
  }
  co_await ctx.wait_until([](const Whiteboard& wb) {
    return wb.distinct_colors_with_tag(70) >= 1;
  });
  ctx.declare_failure_detected();
}

TEST(World, SameSeedSamePolicyIsDeterministic) {
  for (const SchedulerPolicy policy :
       {SchedulerPolicy::Random, SchedulerPolicy::Lockstep}) {
    RunConfig cfg;
    cfg.policy = policy;
    cfg.seed = 77;
    World w1(graph::ring(6), graph::Placement(6, {0, 2, 4}), 13);
    World w2(graph::ring(6), graph::Placement(6, {0, 2, 4}), 13);
    const RunResult r1 = w1.run(racing_protocol, cfg);
    const RunResult r2 = w2.run(racing_protocol, cfg);
    EXPECT_EQ(compare_run_results(r1, r2), "") << policy_name(policy);
  }
}

TEST(World, DifferentSeedsUsuallyDiverge) {
  // Not a guarantee per-seed, but across this instance the interleavings
  // differ; the step counts under seeds 1 and 2 are observed distinct.
  RunConfig cfg1, cfg2;
  cfg1.seed = 1;
  cfg2.seed = 2;
  World w1(graph::ring(6), graph::Placement(6, {0, 3}), 9);
  World w2(graph::ring(6), graph::Placement(6, {0, 3}), 9);
  const RecordedRun a = record_run(w1, racing_protocol, cfg1);
  const RecordedRun b = record_run(w2, racing_protocol, cfg2);
  EXPECT_NE(a.schedule, b.schedule);
}

TEST(World, RecordReplayRoundTripRandom) {
  World w(graph::ring(6), graph::Placement(6, {0, 2, 4}), 21);
  RunConfig cfg;
  cfg.seed = 31;
  const RecordedRun recorded = record_run(w, racing_protocol, cfg);
  ASSERT_TRUE(recorded.result.completed);
  EXPECT_EQ(recorded.schedule.size(), recorded.result.steps);
  const ReplayVerification v =
      verify_replay(w, racing_protocol, cfg, recorded.result,
                    recorded.schedule);
  EXPECT_TRUE(v.identical) << v.divergence;
}

TEST(World, RecordReplayRoundTripRoundRobin) {
  World w(graph::ring(6), graph::Placement(6, {0, 3}), 8);
  RunConfig cfg;
  cfg.policy = SchedulerPolicy::RoundRobin;
  const RecordedRun recorded = record_run(w, racing_protocol, cfg);
  ASSERT_TRUE(recorded.result.completed);
  const ReplayVerification v =
      verify_replay(w, racing_protocol, cfg, recorded.result,
                    recorded.schedule);
  EXPECT_TRUE(v.identical) << v.divergence;
}

TEST(World, ReplayRequiresSchedule) {
  World w(graph::ring(4), graph::Placement(4, {0}), 8);
  RunConfig cfg;
  cfg.policy = SchedulerPolicy::Replay;
  EXPECT_THROW(w.run(
                   [](AgentCtx& ctx) -> Behavior {
                     co_await ctx.yield();
                   },
                   cfg),
               CheckError);
}

TEST(World, ReplayDivergenceDetected) {
  // A schedule naming a non-enabled agent must abort, not silently drift.
  World w(graph::ring(4), graph::Placement(4, {0}), 8);
  trace::Schedule bogus;
  bogus.picks = {5};  // only agent 0 exists
  RunConfig cfg;
  cfg.policy = SchedulerPolicy::Replay;
  cfg.replay = &bogus;
  EXPECT_THROW(w.run(
                   [](AgentCtx& ctx) -> Behavior {
                     co_await ctx.yield();
                     ctx.declare_leader();
                   },
                   cfg),
               CheckError);
}

TEST(World, RejectsDisconnectedGraph) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(World(std::move(g), graph::Placement(4, {0}), 1), CheckError);
}

}  // namespace
}  // namespace qelect::sim
