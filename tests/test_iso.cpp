// Unit tests for the isomorphism engine: refinement, canonical forms,
// automorphism enumeration, and equivalence classes -- cross-validated
// against known automorphism group orders and against each other.
#include <gtest/gtest.h>

#include "qelect/graph/families.hpp"
#include "qelect/iso/automorphism.hpp"
#include "qelect/iso/canonical.hpp"
#include "qelect/iso/colored_digraph.hpp"
#include "qelect/iso/equivalence.hpp"
#include "qelect/iso/refinement.hpp"

namespace qelect::iso {
namespace {

using graph::Placement;

ColoredDigraph plain(const graph::Graph& g) {
  return from_bicolored_graph(g, Placement::empty(g.node_count()));
}

TEST(Refinement, DistinguishesDegrees) {
  const auto g = plain(graph::star(3));
  const Coloring c = refine(g);
  // Center vs leaves: two classes.
  const auto classes = color_classes(c);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].size() + classes[1].size(), 4u);
}

TEST(Refinement, RegularGraphStaysCoarse) {
  const auto g = plain(graph::ring(6));
  EXPECT_EQ(color_classes(refine(g)).size(), 1u);
}

TEST(Refinement, ColorsSeedTheRefinement) {
  const graph::Graph ring6 = graph::ring(6);
  const auto g = from_bicolored_graph(ring6, Placement(6, {0}));
  const auto classes = color_classes(refine(g));
  // Distances from the black node: {0}, {1,5}, {2,4}, {3}.
  EXPECT_EQ(classes.size(), 4u);
}

TEST(Refinement, RoundsMatchViewDepth) {
  const graph::Graph p = graph::path(5);
  const auto g = plain(p);
  // After one round only degrees are known: 2 classes (ends vs middle).
  EXPECT_EQ(color_classes(refine_rounds(g, g.colors(), 1)).size(), 2u);
  // Fixed point separates by distance to the ends: 3 classes.
  EXPECT_EQ(color_classes(refine(g)).size(), 3u);
}

TEST(Refinement, IsDiscreteAndNormalize) {
  EXPECT_TRUE(is_discrete({2, 0, 1}));
  EXPECT_FALSE(is_discrete({0, 0, 1}));
  EXPECT_EQ(normalize_coloring({7, 3, 7, 9}),
            (Coloring{1, 0, 1, 2}));
}

TEST(Canonical, InvariantUnderRelabeling) {
  const graph::Graph g = graph::petersen();
  const auto base = canonical_certificate(plain(g));
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto sigma =
        graph::random_node_permutation(g.node_count(), seed);
    const auto cert = canonical_certificate(plain(g.relabel_nodes(sigma)));
    EXPECT_EQ(cert, base);
  }
}

TEST(Canonical, SeparatesNonIsomorphic) {
  EXPECT_NE(canonical_certificate(plain(graph::ring(6))),
            canonical_certificate(plain(graph::complete_bipartite(3, 3))));
  EXPECT_NE(canonical_certificate(plain(graph::path(4))),
            canonical_certificate(plain(graph::star(3))));
}

TEST(Canonical, ColorsMatter) {
  const graph::Graph g = graph::ring(5);
  const auto a = from_bicolored_graph(g, Placement(5, {0}));
  const auto b = from_bicolored_graph(g, Placement(5, {2}));
  const auto c = from_bicolored_graph(g, Placement(5, {0, 1}));
  EXPECT_EQ(canonical_certificate(a), canonical_certificate(b));
  EXPECT_NE(canonical_certificate(a), canonical_certificate(c));
}

TEST(Canonical, ArcLabelsMatter) {
  const graph::Graph p3 = graph::path(3);
  const graph::Placement empty = Placement::empty(3);
  const auto fig2 = graph::figure2_path();
  const auto quant = from_labeled_graph(p3, empty, fig2.quantitative);
  const auto qual = from_labeled_graph(p3, empty, fig2.qualitative);
  EXPECT_NE(canonical_certificate(quant), canonical_certificate(qual));
}

TEST(Canonical, LabelingRealizesCertificate) {
  const graph::Graph g = graph::cube_connected_cycles(3);
  const auto d = plain(g);
  const CanonicalForm form = canonical_form(d);
  EXPECT_EQ(certificate_under(d, form.labeling), form.certificate);
  for (const auto& gamma : form.discovered_automorphisms) {
    EXPECT_TRUE(is_automorphism(d, gamma));
  }
}

TEST(Canonical, CompleteGraphIsFast) {
  // Automorphism pruning must keep K_8 tractable (8! leaves without it).
  const CanonicalForm form = canonical_form(plain(graph::complete(8)));
  EXPECT_LT(form.leaves_evaluated, 500u);
}

TEST(Canonical, MultigraphAndLoops) {
  const auto ex = graph::figure2c();
  const auto cert1 = canonical_certificate(
      from_labeled_graph(ex.graph, Placement::empty(3), ex.labeling));
  EXPECT_FALSE(cert1.empty());
}

TEST(Automorphism, KnownGroupOrders) {
  EXPECT_EQ(automorphism_count(plain(graph::ring(5))).value(), 10u);   // D_5
  EXPECT_EQ(automorphism_count(plain(graph::ring(8))).value(), 16u);   // D_8
  EXPECT_EQ(automorphism_count(plain(graph::complete(5))).value(), 120u);
  EXPECT_EQ(automorphism_count(plain(graph::petersen())).value(), 120u);
  EXPECT_EQ(automorphism_count(plain(graph::hypercube(3))).value(),
            48u);  // 2^3 * 3!
  EXPECT_EQ(automorphism_count(plain(graph::star(4))).value(), 24u);  // S_4
  EXPECT_EQ(automorphism_count(plain(graph::path(4))).value(), 2u);
}

TEST(Automorphism, LimitAborts) {
  EXPECT_FALSE(automorphism_count(plain(graph::complete(6)), 100).has_value());
}

TEST(Automorphism, ColoredGroupShrinks) {
  const graph::Graph g = graph::ring(6);
  // Two antipodal black nodes: stabilizer of {0,3} in D_6 has order 4.
  const auto d = from_bicolored_graph(g, Placement(6, {0, 3}));
  EXPECT_EQ(automorphism_count(d).value(), 4u);
}

TEST(Automorphism, OrbitsOfColoredRing) {
  const graph::Graph g = graph::ring(6);
  const auto d = from_bicolored_graph(g, Placement(6, {0, 3}));
  const auto orbits = automorphism_orbits(d);
  // {0,3}, {1,2,4,5}.
  ASSERT_EQ(orbits.size(), 2u);
  EXPECT_EQ(orbits[0], (std::vector<NodeId>{0, 3}));
  EXPECT_EQ(orbits[1], (std::vector<NodeId>{1, 2, 4, 5}));
}

TEST(Automorphism, VertexTransitiveFamilies) {
  EXPECT_TRUE(is_vertex_transitive(plain(graph::ring(7))));
  EXPECT_TRUE(is_vertex_transitive(plain(graph::petersen())));
  EXPECT_TRUE(is_vertex_transitive(plain(graph::hypercube(3))));
  EXPECT_FALSE(is_vertex_transitive(plain(graph::star(3))));
  EXPECT_FALSE(is_vertex_transitive(plain(graph::path(4))));
}

TEST(Automorphism, ComposeInvertIdentity) {
  const std::vector<NodeId> a{1, 2, 0};
  const std::vector<NodeId> inv = invert(a);
  EXPECT_EQ(compose(a, inv), identity_permutation(3));
  EXPECT_EQ(compose(inv, a), identity_permutation(3));
}

TEST(Equivalence, ClassesMatchAutomorphismOrbits) {
  // The certificate-based classes must equal the orbit computation from
  // the fully enumerated group, on a spread of colored instances.
  const std::vector<std::pair<graph::Graph, Placement>> cases = {
      {graph::ring(6), Placement(6, {0, 3})},
      {graph::ring(6), Placement(6, {0, 1})},
      {graph::petersen(), Placement(10, {0, 1})},
      {graph::hypercube(3), Placement(8, {0})},
      {graph::star(4), Placement(5, {1})},
      {graph::path(5), Placement::empty(5)},
  };
  for (const auto& [g, p] : cases) {
    const auto d = from_bicolored_graph(g, p);
    const auto classes = equivalence_classes(d).classes;
    auto orbits = automorphism_orbits(d);
    auto sorted_classes = classes;
    std::sort(sorted_classes.begin(), sorted_classes.end());
    std::sort(orbits.begin(), orbits.end());
    EXPECT_EQ(sorted_classes, orbits) << g.describe();
  }
}

TEST(Equivalence, ClassOrderIsRelabelingInvariant) {
  // The *sizes* in prec order must be identical for isomorphic inputs --
  // this is what lets agents agree on the class schedule.
  const graph::Graph g = graph::ring(8);
  const Placement p(8, {0, 2, 4});
  const auto base = class_sizes(equivalence_classes(from_bicolored_graph(g, p)));
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto sigma = graph::random_node_permutation(8, seed);
    const auto sizes = class_sizes(equivalence_classes(
        from_bicolored_graph(g.relabel_nodes(sigma), p.relabel(sigma))));
    EXPECT_EQ(sizes, base);
  }
}

}  // namespace
}  // namespace qelect::iso
