// World reuse and the campaign WorldPool (PR 5).
//
// The batched run engine's whole premise is that World::reset() followed
// by run() is observationally identical to constructing a fresh World:
// same event stream, same per-agent reports, same totals, under every
// scheduler policy including exact Replay.  The first half of this file
// holds the runtime to that, deliberately dirtying a World (different
// seed, different policy, different run) before reusing it.  The second
// half covers the pool itself: structural keying, hit/reset semantics,
// seed retargeting, and LRU eviction.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "qelect/campaign/world_pool.hpp"
#include "qelect/core/baselines.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/fault/plan.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/graph/placement.hpp"
#include "qelect/sim/message_world.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/trace/schedule.hpp"
#include "qelect/trace/sink.hpp"

namespace qelect {
namespace {

using graph::Graph;
using graph::Placement;

// Everything an external observer can see of a run: the full event stream
// plus the final result.  Colors compare by equality and minting is
// deterministic in the seed, so AgentReport == AgentReport is meaningful
// across distinct World objects built from the same seed.
struct Observed {
  std::vector<trace::TraceEvent> events;
  sim::RunResult result;
};

Observed traced_run(sim::World& w, const sim::Protocol& protocol,
                    sim::RunConfig config) {
  trace::VectorSink sink;
  config.sink = &sink;
  Observed obs;
  obs.result = w.run(protocol, config);
  obs.events = sink.events();
  return obs;
}

void expect_identical(const Observed& fresh, const Observed& reused) {
  EXPECT_EQ(fresh.events, reused.events);
  EXPECT_EQ(fresh.result.completed, reused.result.completed);
  EXPECT_EQ(fresh.result.deadlock, reused.result.deadlock);
  EXPECT_EQ(fresh.result.step_limit, reused.result.step_limit);
  EXPECT_EQ(fresh.result.steps, reused.result.steps);
  EXPECT_EQ(fresh.result.total_moves, reused.result.total_moves);
  EXPECT_EQ(fresh.result.total_board_accesses,
            reused.result.total_board_accesses);
  EXPECT_EQ(fresh.result.agents, reused.result.agents);
}

sim::RunConfig config_for(sim::SchedulerPolicy policy, std::uint64_t seed) {
  sim::RunConfig config;
  config.policy = policy;
  config.seed = seed;
  return config;
}

struct PolicyCase {
  const char* name;
  sim::SchedulerPolicy policy;
  std::uint64_t seed;
};

const std::vector<PolicyCase>& policy_cases() {
  static const std::vector<PolicyCase> all = {
      {"random/s=1", sim::SchedulerPolicy::Random, 1},
      {"random/s=7", sim::SchedulerPolicy::Random, 7},
      {"round-robin", sim::SchedulerPolicy::RoundRobin, 1},
      {"lockstep", sim::SchedulerPolicy::Lockstep, 1},
  };
  return all;
}

TEST(WorldReset, ReusedWorldMatchesFreshAcrossPolicies) {
  const Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  const sim::Protocol elect = core::make_elect_protocol();

  for (const PolicyCase& pc : policy_cases()) {
    SCOPED_TRACE(pc.name);
    sim::World fresh(g, p, 11);
    const Observed want =
        traced_run(fresh, elect, config_for(pc.policy, pc.seed));

    // Dirty a World thoroughly -- other color seed, other scheduler --
    // then retarget it at the fresh World's configuration.
    sim::World reused(g, p, 3);
    traced_run(reused, elect, config_for(sim::SchedulerPolicy::Random, 99));
    reused.reset(11);
    const Observed got =
        traced_run(reused, elect, config_for(pc.policy, pc.seed));
    expect_identical(want, got);
  }
}

TEST(WorldReset, ReusedWorldMatchesFreshUnderReplay) {
  const Graph g = graph::hypercube(3);
  const Placement p(8, {0, 7});
  const sim::Protocol elect = core::make_elect_protocol();

  // Record a schedule from a fresh random run.
  trace::ScheduleRecorder recorder;
  sim::RunConfig record = config_for(sim::SchedulerPolicy::Random, 5);
  record.sink = &recorder;
  sim::World recorded(g, p, 5);
  const auto base = recorded.run(elect, record);
  ASSERT_TRUE(base.completed);
  const trace::Schedule schedule = recorder.take();

  sim::RunConfig replay = config_for(sim::SchedulerPolicy::Replay, 5);
  replay.replay = &schedule;

  sim::World fresh(g, p, 5);
  const Observed want = traced_run(fresh, elect, replay);

  sim::World reused(g, p, 42);
  traced_run(reused, elect, config_for(sim::SchedulerPolicy::Lockstep, 1));
  reused.reset(5);
  const Observed got = traced_run(reused, elect, replay);
  expect_identical(want, got);
  EXPECT_EQ(want.result.steps, base.steps);
}

TEST(WorldReset, QuantitativeWorldKeepsLabelsAcrossReset) {
  const Graph g = graph::ring(5);
  const Placement p(5, {0, 2});
  const sim::Protocol quant = core::make_quantitative_protocol();
  const sim::RunConfig config = config_for(sim::SchedulerPolicy::Random, 1);

  sim::World fresh = sim::World::quantitative(g, p, 9);
  const Observed want = traced_run(fresh, quant, config);
  ASSERT_TRUE(want.result.clean_election());

  sim::World reused = sim::World::quantitative(g, p, 2);
  traced_run(reused, quant, config);
  reused.reset(9);
  const Observed got = traced_run(reused, quant, config);
  expect_identical(want, got);
}

TEST(WorldReset, MessageWorldReusedMatchesFreshAcrossPolicies) {
  // MessageWorld::reset parity, the pooled-reuse premise, under every
  // scheduler policy -- the same discipline the World variant above gets.
  const Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  const sim::Protocol elect = core::make_elect_protocol();

  auto run_message = [&](sim::MessageWorld& w, sim::RunConfig config) {
    trace::VectorSink sink;
    config.sink = &sink;
    Observed obs;
    obs.result = w.run(elect, config);
    obs.events = sink.events();
    return obs;
  };

  for (const PolicyCase& pc : policy_cases()) {
    SCOPED_TRACE(pc.name);
    sim::MessageWorld fresh(g, p, 11);
    const Observed want =
        run_message(fresh, config_for(pc.policy, pc.seed));

    sim::MessageWorld reused(g, p, 3);
    run_message(reused, config_for(sim::SchedulerPolicy::Random, 99));
    reused.reset(11);
    const Observed got =
        run_message(reused, config_for(pc.policy, pc.seed));
    expect_identical(want, got);
  }
}

TEST(WorldReset, FaultedWorldsResetCleanAcrossPolicies) {
  // With a FaultPlan attached, reset ≡ fresh must still hold -- both ways:
  // a faulted run after reset matches a faulted run on a fresh world, and
  // dirtying a world with a faulty run leaves no residue behind reset.
  const Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  const sim::Protocol elect = core::make_elect_protocol();
  fault::FaultPlan plan;
  plan.fault_seed = 0xfa11;
  plan.crash_rate = 0.03;
  plan.sign_loss_rate = 0.03;
  plan.edge_cut_rate = 0.03;

  for (const PolicyCase& pc : policy_cases()) {
    SCOPED_TRACE(pc.name);
    sim::RunConfig faulted = config_for(pc.policy, pc.seed);
    faulted.faults = &plan;

    sim::World fresh(g, p, 11);
    const Observed want = traced_run(fresh, elect, faulted);

    sim::World reused(g, p, 3);
    traced_run(reused, elect, faulted);  // dirty with a *faulty* run
    reused.reset(11);
    const Observed got = traced_run(reused, elect, faulted);
    expect_identical(want, got);
    EXPECT_EQ(want.result.fault_summary, got.result.fault_summary);
    EXPECT_EQ(want.result.fault_events, got.result.fault_events);

    // And a fault-free run after a faulty one sees no residue at all.
    reused.reset(11);
    const Observed clean =
        traced_run(reused, elect, config_for(pc.policy, pc.seed));
    sim::World control(g, p, 11);
    const Observed fresh_clean =
        traced_run(control, elect, config_for(pc.policy, pc.seed));
    expect_identical(fresh_clean, clean);
  }
}

TEST(WorldReset, FaultedMessageWorldResetsCleanAcrossPolicies) {
  const Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  const sim::Protocol elect = core::make_elect_protocol();
  fault::FaultPlan plan;
  plan.fault_seed = 0xfa12;
  plan.msg_loss_rate = 0.03;
  plan.msg_delay_rate = 0.03;

  auto run_message = [&](sim::MessageWorld& w, sim::RunConfig config) {
    trace::VectorSink sink;
    config.sink = &sink;
    Observed obs;
    obs.result = w.run(elect, config);
    obs.events = sink.events();
    return obs;
  };

  for (const PolicyCase& pc : policy_cases()) {
    SCOPED_TRACE(pc.name);
    sim::RunConfig faulted = config_for(pc.policy, pc.seed);
    faulted.faults = &plan;

    sim::MessageWorld fresh(g, p, 11);
    const Observed want = run_message(fresh, faulted);

    sim::MessageWorld reused(g, p, 3);
    run_message(reused, faulted);
    reused.reset(11);
    const Observed got = run_message(reused, faulted);
    expect_identical(want, got);
    EXPECT_EQ(want.result.fault_events, got.result.fault_events);
  }
}

TEST(WorldReset, MessageWorldReusedMatchesFresh) {
  const Graph g = graph::ring(4);
  const Placement p(4, {0, 2});
  const sim::Protocol elect = core::make_elect_protocol();
  const sim::RunConfig config = config_for(sim::SchedulerPolicy::Random, 3);

  auto run_message = [&](sim::MessageWorld& w) {
    trace::VectorSink sink;
    sim::RunConfig c = config;
    c.sink = &sink;
    Observed obs;
    obs.result = w.run(elect, c);
    obs.events = sink.events();
    return obs;
  };

  sim::MessageWorld fresh(g, p, 13);
  const Observed want = run_message(fresh);

  sim::MessageWorld reused(g, p, 4);
  run_message(reused);
  reused.reset(13);
  const Observed got = run_message(reused);
  expect_identical(want, got);
}

// ---- the pool -----------------------------------------------------------

campaign::TaskSpec elect_task(std::vector<std::size_t> ring_params,
                              std::uint64_t seed) {
  campaign::TaskSpec task;
  task.key = "test";
  task.workload = "elect";
  task.graph = campaign::GraphRef{"ring", std::move(ring_params)};
  task.home_bases = {0, 2};
  task.color_seed = seed;
  return task;
}

TEST(WorldPool, HitsReuseTheSameWorldObject) {
  campaign::WorldPool pool(4);
  sim::World& a = pool.acquire(elect_task({6}, 1), false);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 0u);

  sim::World& b = pool.acquire(elect_task({6}, 1), false);
  EXPECT_EQ(&a, &b);  // same arena, reset in place
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.size(), 1u);

  // Different structure -> different entry.
  sim::World& c = pool.acquire(elect_task({8}, 1), false);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(pool.misses(), 2u);

  // Same graph and placement but quantitative -> distinct entry (labels
  // differ observationally).
  sim::World& q = pool.acquire(elect_task({6}, 1), true);
  EXPECT_NE(&a, &q);
  EXPECT_EQ(q.agent_colors().size(), 2u);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(WorldPool, HitRetargetsColorSeed) {
  campaign::WorldPool pool(4);
  sim::World& a = pool.acquire(elect_task({6}, 1), false);
  const std::vector<sim::Color> colors_s1 = a.agent_colors();

  sim::World& b = pool.acquire(elect_task({6}, 2), false);
  ASSERT_EQ(&a, &b);
  EXPECT_EQ(b.color_seed(), 2u);
  EXPECT_NE(b.agent_colors(), colors_s1);  // re-minted for the new seed

  sim::World& c = pool.acquire(elect_task({6}, 1), false);
  EXPECT_EQ(c.agent_colors(), colors_s1);  // deterministic in the seed
}

TEST(WorldPool, PooledRunMatchesFreshWorld) {
  const campaign::TaskSpec task = elect_task({6}, 11);
  const sim::Protocol elect = core::make_elect_protocol();
  const sim::RunConfig config = config_for(sim::SchedulerPolicy::Random, 11);

  sim::World fresh(graph::ring(6), Placement(6, {0, 2}), 11);
  const Observed want = traced_run(fresh, elect, config);

  campaign::WorldPool pool(4);
  // First acquisition (miss) and a run to dirty the arena...
  traced_run(pool.acquire(task, false), elect, config);
  // ...then the pooled re-acquisition must be observationally fresh.
  const Observed got = traced_run(pool.acquire(task, false), elect, config);
  ASSERT_EQ(pool.hits(), 1u);
  expect_identical(want, got);
}

TEST(WorldPool, EvictsLeastRecentlyUsedAtCapacity) {
  campaign::WorldPool pool(2);
  pool.acquire(elect_task({5}, 1), false);
  pool.acquire(elect_task({6}, 1), false);
  pool.acquire(elect_task({5}, 1), false);  // touch ring(5): ring(6) is LRU
  EXPECT_EQ(pool.size(), 2u);

  pool.acquire(elect_task({7}, 1), false);  // evicts ring(6)
  EXPECT_EQ(pool.size(), 2u);
  pool.acquire(elect_task({5}, 1), false);
  EXPECT_EQ(pool.hits(), 2u);

  const std::size_t misses_before = pool.misses();
  pool.acquire(elect_task({6}, 1), false);  // was evicted: a miss again
  EXPECT_EQ(pool.misses(), misses_before + 1);
}

TEST(WorldPool, StatsSnapshotTracksHitsMissesEvictions) {
  // The qelectd STATS opcode exports exactly this snapshot per worker
  // shard, so its accounting is part of the serving contract.
  campaign::WorldPool pool(2);
  auto s = pool.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_EQ(s.hits + s.misses + s.evictions, 0u);

  pool.acquire(elect_task({5}, 1), false);   // miss
  pool.acquire(elect_task({5}, 2), false);   // hit (seed retarget)
  pool.acquire(elect_task({6}, 1), false);   // miss, pool full
  pool.acquire(elect_task({7}, 1), false);   // miss + eviction of ring(5)
  s = pool.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 1u);
  // The snapshot agrees with the scalar accessors.
  EXPECT_EQ(s.hits, pool.hits());
  EXPECT_EQ(s.misses, pool.misses());
  EXPECT_EQ(s.entries, pool.size());

  pool.acquire(elect_task({5}, 1), false);  // evicted shape: miss + evict
  s = pool.stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.evictions, 2u);
}

TEST(WorldPool, LocalPoolIsPerThread) {
  campaign::WorldPool& a = campaign::WorldPool::local();
  campaign::WorldPool& b = campaign::WorldPool::local();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace qelect
