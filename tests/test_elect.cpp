// End-to-end tests of the live ELECT protocol: its observable outcome must
// match the offline oracle (Theorem 3.1) on every instance, under every
// scheduler policy and seed, and within the O(r |E|) move budget.
#include <gtest/gtest.h>

#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/world.hpp"

namespace qelect::core {
namespace {

using graph::Placement;
using sim::RunConfig;
using sim::RunResult;
using sim::SchedulerPolicy;
using sim::World;

struct Instance {
  std::string name;
  graph::Graph g;
  Placement p;
};

std::vector<Instance> standard_instances() {
  std::vector<Instance> out;
  out.push_back({"ring5-single", graph::ring(5), Placement(5, {2})});
  out.push_back({"ring5-adjacent", graph::ring(5), Placement(5, {0, 1})});
  out.push_back({"ring5-two-black-classes", graph::ring(5),
                 Placement(5, {0, 1, 3})});
  out.push_back({"ring6-gcd1", graph::ring(6), Placement(6, {0, 2})});
  out.push_back({"ring6-antipodal", graph::ring(6), Placement(6, {0, 3})});
  out.push_back({"ring4-adjacent", graph::ring(4), Placement(4, {0, 1})});
  out.push_back({"k2-both", graph::complete(2), Placement(2, {0, 1})});
  out.push_back({"ring5-full", graph::ring(5),
                 Placement(5, {0, 1, 2, 3, 4})});
  out.push_back({"cube-antipodal", graph::hypercube(3), Placement(8, {0, 7})});
  out.push_back({"cube-mixed", graph::hypercube(3), Placement(8, {0, 3, 5})});
  out.push_back({"petersen-adjacent", graph::petersen(),
                 Placement(10, {0, 5})});
  out.push_back({"star-center-leaf", graph::star(4), Placement(5, {0, 1})});
  out.push_back({"path4-end-pair", graph::path(4), Placement(4, {0, 1})});
  out.push_back({"torus33-pair", graph::torus({3, 3}), Placement(9, {0, 4})});
  return out;
}

void expect_matches_oracle(const Instance& inst, const RunResult& r,
                           std::uint64_t expected_gcd) {
  ASSERT_TRUE(r.completed) << inst.name;
  if (expected_gcd == 1) {
    EXPECT_TRUE(r.clean_election()) << inst.name;
  } else {
    EXPECT_TRUE(r.clean_failure()) << inst.name;
  }
}

TEST(Elect, MatchesOracleAcrossInstancesAndSchedulers) {
  for (const Instance& inst : standard_instances()) {
    const ProtocolClassPlan plan = protocol_plan(inst.g, inst.p);
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::Random, SchedulerPolicy::RoundRobin}) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        World w(inst.g, inst.p, /*color_seed=*/seed * 1000 + 7);
        RunConfig cfg;
        cfg.policy = policy;
        cfg.seed = seed;
        const RunResult r = w.run(make_elect_protocol(), cfg);
        expect_matches_oracle(inst, r, plan.final_gcd);
      }
    }
  }
}

TEST(Elect, SingleAgentElectsItselfImmediately) {
  World w(graph::ring(7), Placement(7, {3}), 5);
  const RunResult r = w.run(make_elect_protocol(), RunConfig{});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.clean_election());
  EXPECT_EQ(r.agents[0].status, sim::AgentStatus::Leader);
}

TEST(Elect, MoveComplexityIsLinearInREdges) {
  // Theorem 3.1: O(r |E|) moves and board accesses.  Check a generous
  // constant on a spread of instances (the bench measures the real one).
  for (const Instance& inst : standard_instances()) {
    World w(inst.g, inst.p, 99);
    const RunResult r = w.run(make_elect_protocol(), RunConfig{});
    ASSERT_TRUE(r.completed) << inst.name;
    const std::size_t budget =
        64 * inst.p.agent_count() * inst.g.edge_count() + 64;
    EXPECT_LE(r.total_moves, budget) << inst.name;
    EXPECT_LE(r.total_board_accesses, budget) << inst.name;
  }
}

TEST(Elect, OutcomeIndependentOfColorSeeds) {
  // Qualitative soundness: the success/failure outcome cannot depend on
  // the (hidden, randomized) color tokens.
  const Instance inst{"ring6-gcd1", graph::ring(6), Placement(6, {0, 2})};
  for (std::uint64_t color_seed = 1; color_seed <= 8; ++color_seed) {
    World w(inst.g, inst.p, color_seed);
    const RunResult r = w.run(make_elect_protocol(), RunConfig{});
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.clean_election());
  }
  const Instance inst2{"ring6-anti", graph::ring(6), Placement(6, {0, 3})};
  for (std::uint64_t color_seed = 1; color_seed <= 8; ++color_seed) {
    World w(inst2.g, inst2.p, color_seed);
    const RunResult r = w.run(make_elect_protocol(), RunConfig{});
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.clean_failure());
  }
}

TEST(Elect, AdversarialPortNumberings) {
  // Definition 1.1: the protocol must behave correctly for every
  // edge-labeling.  Re-run instances under random port permutations.
  const std::vector<Instance> insts = {
      {"ring6-gcd1", graph::ring(6), Placement(6, {0, 2})},
      {"ring6-anti", graph::ring(6), Placement(6, {0, 3})},
      {"cube-mixed", graph::hypercube(3), Placement(8, {0, 3, 5})},
  };
  for (const Instance& inst : insts) {
    const std::uint64_t want_gcd = protocol_plan(inst.g, inst.p).final_gcd;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const graph::Graph h =
          inst.g.permute_ports(graph::random_port_permutations(inst.g, seed));
      World w(h, inst.p, seed + 100);
      RunConfig cfg;
      cfg.seed = seed;
      const RunResult r = w.run(make_elect_protocol(), cfg);
      expect_matches_oracle(inst, r, want_gcd);
    }
  }
}

TEST(Elect, LeaderAnnouncementReachesEveryBoard) {
  const graph::Graph g = graph::ring(6);
  const Placement p(6, {0, 2});
  World w(g, p, 17);
  const RunResult r = w.run(make_elect_protocol(), RunConfig{});
  ASSERT_TRUE(r.clean_election());
  for (graph::NodeId v = 0; v < 6; ++v) {
    const sim::Sign* s = w.board_at(v).find_tag(kTagOutcome);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->payload.front(), kOutcomeLeader);
  }
}

TEST(Elect, FailureAnnouncementReachesEveryBoard) {
  const graph::Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  World w(g, p, 23);
  const RunResult r = w.run(make_elect_protocol(), RunConfig{});
  ASSERT_TRUE(r.clean_failure());
  for (graph::NodeId v = 0; v < 6; ++v) {
    const sim::Sign* s = w.board_at(v).find_tag(kTagOutcome);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->payload.front(), kOutcomeFailure);
  }
}

TEST(Elect, LeaderIsAlwaysAnActualAgent) {
  const graph::Graph g = graph::hypercube(3);
  const Placement p(8, {0, 3, 5});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    World w(g, p, seed);
    RunConfig cfg;
    cfg.seed = seed;
    const RunResult r = w.run(make_elect_protocol(), cfg);
    ASSERT_TRUE(r.clean_election());
    // The leader every defeated agent names must be the elected one.
    sim::Color leader;
    for (const auto& a : r.agents) {
      if (a.status == sim::AgentStatus::Leader) leader = a.color;
    }
    for (const auto& a : r.agents) {
      if (a.status == sim::AgentStatus::Defeated) {
        EXPECT_EQ(a.leader_color == leader, true);
      }
    }
  }
}

}  // namespace
}  // namespace qelect::core
