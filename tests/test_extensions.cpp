// Tests for the extension features: gathering on top of ELECT, protocol
// instrumentation validated against the offline schedule, the canonical
// search ablation, the quaternion/star-graph families, permutation-group
// wrapping, the Sabidussi coset quotient, and the coarse-start marking
// process.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "qelect/cayley/marking.hpp"
#include "qelect/cayley/recognition.hpp"
#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/core/gather.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/group/cayley_graph.hpp"
#include "qelect/iso/automorphism.hpp"
#include "qelect/iso/canonical.hpp"
#include "qelect/iso/colored_digraph.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/util/assert.hpp"
#include "qelect/util/math.hpp"

namespace qelect {
namespace {

using graph::Placement;

// ---------------------------------------------------------------------------
// Gathering.

TEST(Gather, AllAgentsMeetAtLeaderHome) {
  struct Inst {
    graph::Graph g;
    Placement p;
  };
  const std::vector<Inst> insts = {
      {graph::ring(6), Placement(6, {0, 2})},
      {graph::hypercube(3), Placement(8, {0, 3, 5})},
      {graph::torus({3, 3}), Placement(9, {0, 4})},
  };
  for (const auto& inst : insts) {
    ASSERT_EQ(core::protocol_plan(inst.g, inst.p).final_gcd, 1u);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      sim::World w(inst.g, inst.p, seed);
      sim::RunConfig cfg;
      cfg.seed = seed;
      const auto r = w.run(core::make_gather_protocol(), cfg);
      ASSERT_TRUE(r.completed);
      EXPECT_TRUE(r.clean_election());
      // Everyone physically at the leader's home-base.
      graph::NodeId leader_home = 0;
      for (std::size_t i = 0; i < r.agents.size(); ++i) {
        if (r.agents[i].status == sim::AgentStatus::Leader) {
          leader_home = inst.p.home_bases()[i];
        }
      }
      for (const auto& a : r.agents) {
        EXPECT_EQ(a.final_position, leader_home);
      }
    }
  }
}

TEST(Gather, FailureLeavesAgentsAtTheirHomes) {
  const graph::Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  sim::World w(g, p, 5);
  const auto r = w.run(core::make_gather_protocol(), {});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.clean_failure());
  for (std::size_t i = 0; i < r.agents.size(); ++i) {
    EXPECT_EQ(r.agents[i].final_position, p.home_bases()[i]);
  }
}

// ---------------------------------------------------------------------------
// Instrumentation vs offline schedule.

TEST(ElectTrace, PhaseAndRoundCountsMatchTheory) {
  // ring5 {0,1}: one black class of size 2; the reduction consumes white
  // classes; predicted phase count is plan.phases_executed().
  struct Inst {
    graph::Graph g;
    Placement p;
  };
  const std::vector<Inst> insts = {
      {graph::ring(5), Placement(5, {0, 1})},
      {graph::ring(6), Placement(6, {0, 2})},
      {graph::ring(6), Placement(6, {0, 3})},
      {graph::hypercube(3), Placement(8, {0, 7})},
      {graph::petersen(), Placement(10, {0, 5})},
  };
  for (const auto& inst : insts) {
    const auto plan = core::protocol_plan(inst.g, inst.p);
    auto trace = std::make_shared<core::ElectTrace>();
    sim::World w(inst.g, inst.p, 9);
    const auto r = w.run(core::make_elect_protocol(trace), {});
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(trace->max_phase(), plan.phases_executed());
    EXPECT_EQ(trace->leaders, plan.final_gcd == 1 ? 1u : 0u);
    if (plan.final_gcd != 1) {
      EXPECT_EQ(trace->failure_detectors, inst.p.agent_count());
    }
    // Matching rounds of each agent-agent phase must follow the Euclid
    // trajectory of the participating sizes.
    std::uint64_t d = plan.sizes[0];
    for (std::size_t j = 1; j <= plan.phases_executed(); ++j) {
      const std::uint64_t cls = plan.sizes[j];
      if (j < plan.ell) {
        const std::size_t expected_rounds = agent_reduce_rounds(d, cls);
        EXPECT_EQ(trace->rounds_of_phase(j), expected_rounds)
            << "phase " << j;
      }
      d = std::gcd(d, cls);
    }
  }
}

TEST(ElectTrace, MatchAndAcquireAccounting) {
  // Q3 antipodal pair: one agent-node phase, Case 2 (2 agents, 6 nodes,
  // q = 2): exactly 4 acquires, no matches.
  const graph::Graph g = graph::hypercube(3);
  const Placement p(8, {0, 7});
  auto trace = std::make_shared<core::ElectTrace>();
  sim::World w(g, p, 3);
  const auto r = w.run(core::make_elect_protocol(trace), {});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(trace->matches_posted, 0u);
  EXPECT_EQ(trace->acquires_posted, 4u);
  EXPECT_EQ(trace->activations_posted, 0u);  // ell == 1: nothing to wake
}

TEST(ElectTrace, ActivationAccounting) {
  // ring5 {0,1,3}: two black classes ({0,1} and {3}); phase 1 activates
  // the second class: |D| activators x |C_2| homes.
  const graph::Graph g = graph::ring(5);
  const Placement p(5, {0, 1, 3});
  const auto plan = core::protocol_plan(g, p);
  ASSERT_EQ(plan.ell, 2u);
  auto trace = std::make_shared<core::ElectTrace>();
  sim::World w(g, p, 11);
  const auto r = w.run(core::make_elect_protocol(trace), {});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(trace->activations_posted, plan.sizes[0] * plan.sizes[1]);
}

TEST(Elect, LockstepSchedulerWorksToo) {
  for (const auto& [g, p] :
       std::vector<std::pair<graph::Graph, Placement>>{
           {graph::ring(6), Placement(6, {0, 2})},
           {graph::ring(6), Placement(6, {0, 3})}}) {
    const auto plan = core::protocol_plan(g, p);
    sim::World w(g, p, 13);
    sim::RunConfig cfg;
    cfg.policy = sim::SchedulerPolicy::Lockstep;
    const auto r = w.run(core::make_elect_protocol(), cfg);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.clean_election(), plan.final_gcd == 1);
  }
}

TEST(Elect, StepLimitAbortsCleanly) {
  const graph::Graph g = graph::hypercube(3);
  const Placement p(8, {0, 3, 5});
  sim::World w(g, p, 1);
  sim::RunConfig cfg;
  cfg.max_steps = 50;  // far too few to finish
  const auto r = w.run(core::make_elect_protocol(), cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.step_limit);
  EXPECT_EQ(r.leader_count(), 0u);
}

TEST(ElectTidy, BoardsEndCleanOnSingleClassInstances) {
  // With ell == 1 no matching tours run after the announcement, so tidy
  // leaves exactly home-base marks and outcome signs.
  struct Inst {
    graph::Graph g;
    Placement p;
  };
  const std::vector<Inst> insts = {
      {graph::ring(6), Placement(6, {0, 2})},
      {graph::ring(6), Placement(6, {0, 3})},
      {graph::hypercube(3), Placement(8, {0, 7})},
  };
  for (const auto& inst : insts) {
    sim::World w(inst.g, inst.p, 31);
    const auto r =
        w.run(core::make_elect_protocol(nullptr, /*tidy=*/true), {});
    ASSERT_TRUE(r.completed);
    for (graph::NodeId v = 0; v < inst.g.node_count(); ++v) {
      for (const sim::Sign& s : w.board_at(v).signs()) {
        EXPECT_TRUE(s.tag == sim::kTagHomeBase || s.tag == core::kTagOutcome)
            << "node " << v << " tag " << s.tag;
      }
    }
  }
}

TEST(ElectTidy, ResidueIsAtMostLatePassiveAnnouncements) {
  // In multi-class instances a matched agent's passive-announcement tour
  // can land after the tidy pass; everything else must be gone.
  const graph::Graph g = graph::ring(5);
  const Placement p(5, {0, 1, 3});
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::World w(g, p, seed);
    sim::RunConfig cfg;
    cfg.seed = seed;
    const auto r = w.run(core::make_elect_protocol(nullptr, true), cfg);
    ASSERT_TRUE(r.completed);
    for (graph::NodeId v = 0; v < 5; ++v) {
      for (const sim::Sign& s : w.board_at(v).signs()) {
        EXPECT_TRUE(s.tag == sim::kTagHomeBase ||
                    s.tag == core::kTagOutcome ||
                    s.tag == core::kTagPassive)
            << "node " << v << " tag " << s.tag;
      }
    }
  }
}

TEST(ElectTidy, OutcomeUnchangedByTidy) {
  for (const auto& p : {Placement(6, {0, 2}), Placement(6, {0, 3})}) {
    const graph::Graph g = graph::ring(6);
    const auto plan = core::protocol_plan(g, p);
    sim::World w(g, p, 9);
    const auto r = w.run(core::make_elect_protocol(nullptr, true), {});
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.clean_election(), plan.final_gcd == 1);
  }
}

// ---------------------------------------------------------------------------
// Canonical search ablation.

TEST(CanonicalAblation, SameCertificateWithAndWithoutPruning) {
  for (const graph::Graph& g :
       {graph::ring(8), graph::complete(6), graph::petersen()}) {
    const auto d = iso::from_bicolored_graph(
        g, Placement::empty(g.node_count()));
    iso::CanonicalOptions off;
    off.automorphism_pruning = false;
    const auto with = iso::canonical_form(d);
    const auto without = iso::canonical_form(d, off);
    EXPECT_EQ(with.certificate, without.certificate) << g.describe();
    EXPECT_LE(with.leaves_evaluated, without.leaves_evaluated);
  }
}

TEST(CanonicalAblation, PruningCollapsesFactorialBlowup) {
  const auto d = iso::from_bicolored_graph(graph::complete(6),
                                           Placement::empty(6));
  iso::CanonicalOptions off;
  off.automorphism_pruning = false;
  EXPECT_EQ(iso::canonical_form(d, off).leaves_evaluated, 720u);  // 6!
  EXPECT_LT(iso::canonical_form(d).leaves_evaluated, 60u);
}

// ---------------------------------------------------------------------------
// New groups and families.

TEST(Quaternion, GroupStructure) {
  const group::Group q = group::Group::quaternion();
  EXPECT_EQ(q.size(), 8u);
  EXPECT_FALSE(q.is_abelian());
  // -1 is central of order 2; i, j, k have order 4.
  EXPECT_EQ(q.order_of(1), 2u);
  for (group::Elem e : {2u, 4u, 6u}) EXPECT_EQ(q.order_of(e), 4u);
  // i * j = k  (ids: i=2, j=4, k=6).
  EXPECT_EQ(q.op(2, 4), 6u);
  // j * i = -k.
  EXPECT_EQ(q.op(4, 2), 7u);
  // Q_8 has a unique element of order 2 (unlike D_4 which has five).
  std::size_t involutions = 0;
  for (group::Elem e = 1; e < 8; ++e) {
    if (q.order_of(e) == 2) ++involutions;
  }
  EXPECT_EQ(involutions, 1u);
}

TEST(Quaternion, CayleyGraphProperties) {
  const auto cg = group::cayley_quaternion();
  EXPECT_EQ(cg.graph.node_count(), 8u);
  EXPECT_EQ(cg.graph.degree(0), 4u);
  EXPECT_TRUE(cg.graph.is_connected());
  const auto rec = cayley::recognize_cayley(cg.graph);
  EXPECT_TRUE(rec.is_cayley);
}

TEST(StarGraph, Structure) {
  const auto st4 = group::cayley_star_graph(4);
  EXPECT_EQ(st4.graph.node_count(), 24u);
  EXPECT_EQ(st4.graph.degree(0), 3u);
  EXPECT_TRUE(st4.graph.is_connected());
  EXPECT_TRUE(st4.graph.is_regular());
  // Star graphs are bipartite (transpositions change parity): odd cycles
  // are absent, so the 2-coloring by permutation parity is proper.
  const auto dist = st4.graph.bfs_distances(0);
  for (const graph::Edge& e : st4.graph.edges()) {
    EXPECT_NE(dist[e.u] % 2, dist[e.v] % 2);
  }
}

TEST(SymmetricRank, RoundTripsAndMatchesGroup) {
  const unsigned k = 4;
  const group::Group s4 = group::Group::symmetric(k);
  for (group::Elem e = 0; e < s4.size(); ++e) {
    const auto perm = group::symmetric_unrank(k, e);
    EXPECT_EQ(group::symmetric_rank(k, perm), e);
  }
  // rank of identity is 0.
  EXPECT_EQ(group::symmetric_rank(4, {0, 1, 2, 3}), 0u);
  // Composition through ranks agrees with the group op.
  const auto pa = group::symmetric_unrank(k, 5);
  const auto pb = group::symmetric_unrank(k, 17);
  std::vector<std::uint8_t> pc(k);
  for (unsigned i = 0; i < k; ++i) pc[i] = pa[pb[i]];
  EXPECT_EQ(group::symmetric_rank(k, pc), s4.op(5, 17));
}

TEST(PermutationGroup, WrapsClosedSets) {
  // All 6 permutations of 3 points = S_3.
  std::vector<std::vector<std::uint32_t>> perms = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  const auto pg = group::group_from_permutations(perms);
  EXPECT_EQ(pg.group.size(), 6u);
  EXPECT_FALSE(pg.group.is_abelian());
  // members[0] is the identity.
  EXPECT_EQ(pg.members[0], (std::vector<std::uint32_t>{0, 1, 2}));
  // Non-closed set rejected.
  EXPECT_THROW(group::group_from_permutations(
                   {{0, 1, 2}, {1, 2, 0}}),
               CheckError);
}

// ---------------------------------------------------------------------------
// Sabidussi quotient.

TEST(CosetQuotient, RingModuloSubgroupIsSmallerRing) {
  // Z_6 / {0, 3} with connectors {1, 5} -> triangle C_3.
  const group::Group z6 = group::Group::cyclic(6);
  const graph::Graph q = group::coset_quotient(z6, {0, 3}, {1, 5});
  EXPECT_EQ(q.node_count(), 3u);
  EXPECT_EQ(q.edge_count(), 3u);
  EXPECT_TRUE(q.is_connected());
}

TEST(CosetQuotient, RejectsNonSubgroup) {
  const group::Group z6 = group::Group::cyclic(6);
  EXPECT_THROW(group::coset_quotient(z6, {0, 2}, {1}), CheckError);
}

TEST(CosetQuotient, PetersenIsAQuotientOfItsAutomorphismCayleyGraph) {
  // Sabidussi: G = Cay(Aut(G), S) / stab(u0).  The paper closes Section 4
  // with exactly this observation for the Petersen graph.
  const graph::Graph petersen = graph::petersen();
  const auto autos = iso::all_automorphisms(iso::from_bicolored_graph(
      petersen, Placement::empty(10)));
  ASSERT_TRUE(autos.has_value());
  ASSERT_EQ(autos->size(), 120u);
  const auto pg = group::group_from_permutations(*autos);

  std::vector<group::Elem> stabilizer, connectors;
  std::set<graph::NodeId> neighbors;
  for (const graph::HalfEdge& h : petersen.ports(0)) neighbors.insert(h.to);
  for (group::Elem e = 0; e < pg.group.size(); ++e) {
    const graph::NodeId image = pg.members[e][0];
    if (image == 0) stabilizer.push_back(e);
    if (neighbors.count(image)) connectors.push_back(e);
  }
  EXPECT_EQ(stabilizer.size(), 12u);   // |Aut| / n = 120 / 10
  EXPECT_EQ(connectors.size(), 36u);   // 3 neighbors x |stab|

  const graph::Graph quotient =
      group::coset_quotient(pg.group, stabilizer, connectors);
  ASSERT_EQ(quotient.node_count(), 10u);
  const auto a = iso::canonical_certificate(iso::from_bicolored_graph(
      quotient, Placement::empty(10)));
  const auto b = iso::canonical_certificate(iso::from_bicolored_graph(
      petersen, Placement::empty(10)));
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Coarse-start marking.

TEST(MarkingCoarse, RingAntipodalSplitsToTranslationClasses) {
  // ~ classes of (C_6, {0,3}) are {0,3} and {1,2,4,5}: sizes 2 and 4.  The
  // coarse-start process must actually iterate (>= 1 split) and land on
  // classes of size gcd(2, 4) = 2.
  const auto cg = group::cayley_ring(6);
  const Placement p(6, {0, 3});
  const auto res = cayley::theorem41_marking(
      cg, p, cayley::MarkingStart::EquivalenceClasses);
  ASSERT_TRUE(res.completed);
  EXPECT_GE(res.steps.size(), 1u);
  EXPECT_EQ(res.final_class_size, 2u);
  EXPECT_EQ(res.final_classes.size(), 3u);
}

TEST(MarkingCoarse, StrictModeNeverIterates) {
  // The documented finding: translation classes are orbits of a free
  // action, so the paper's process never enters its loop.
  for (const auto& agents :
       std::vector<std::vector<graph::NodeId>>{{0}, {0, 3}, {0, 2, 4}}) {
    const auto cg = group::cayley_ring(6);
    const Placement p(6, agents);
    const auto res = cayley::theorem41_marking(cg, p);
    EXPECT_TRUE(res.completed);
    EXPECT_TRUE(res.steps.empty());
  }
}

TEST(MarkingCoarse, SweepPreservesGcdInvariant) {
  // Across a sweep, completed coarse runs end at gcd(initial ~ sizes); the
  // gcd invariant itself is CHECKed inside the implementation each step.
  struct Inst {
    group::CayleyGraph cg;
    std::vector<graph::NodeId> agents;
  };
  const std::vector<Inst> insts = {
      {group::cayley_ring(6), {0, 3}},
      {group::cayley_ring(8), {0, 4}},
      {group::cayley_ring(8), {0, 2, 4, 6}},
      {group::cayley_hypercube(3), {0, 7}},
      {group::cayley_torus(3, 3), {0}},
  };
  for (const auto& inst : insts) {
    const Placement p(inst.cg.graph.node_count(), inst.agents);
    const auto plan = core::protocol_plan(inst.cg.graph, p);
    const auto res = cayley::theorem41_marking(
        inst.cg, p, cayley::MarkingStart::EquivalenceClasses);
    if (res.completed) {
      EXPECT_EQ(res.final_class_size, plan.final_gcd);
    }
  }
}

}  // namespace
}  // namespace qelect
