// Exhaustive live-protocol sweep: run ELECT on *every* placement of every
// catalog graph and require the outcome to match the Theorem 3.1 oracle.
// This is the heaviest single guarantee in the suite (hundreds of full
// protocol executions) and the closest computational analogue of the
// theorem's "for any network and any placement" quantifier at small scale.
#include <gtest/gtest.h>

#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/message_world.hpp"
#include "qelect/sim/world.hpp"

namespace qelect {
namespace {

using graph::Placement;

struct CatalogGraph {
  std::string name;
  graph::Graph g;
};

std::vector<CatalogGraph> catalog() {
  std::vector<CatalogGraph> out;
  out.push_back({"ring4", graph::ring(4)});
  out.push_back({"ring5", graph::ring(5)});
  out.push_back({"ring6", graph::ring(6)});
  out.push_back({"ring7", graph::ring(7)});
  out.push_back({"path4", graph::path(4)});
  out.push_back({"path5", graph::path(5)});
  out.push_back({"star3", graph::star(3)});
  out.push_back({"k3", graph::complete(3)});
  out.push_back({"k4", graph::complete(4)});
  out.push_back({"bipartite22", graph::complete_bipartite(2, 2)});
  out.push_back({"fig2c", graph::figure2c().graph});  // multigraph + loop
  return out;
}

TEST(Exhaustive, ElectMatchesOracleOnEveryPlacement) {
  std::size_t instances = 0, elections = 0, failures = 0;
  for (const CatalogGraph& cg : catalog()) {
    const std::size_t n = cg.g.node_count();
    for (std::size_t r = 1; r <= n; ++r) {
      for (const Placement& p : graph::enumerate_placements(n, r)) {
        const auto plan = core::protocol_plan(cg.g, p);
        sim::World w(cg.g, p, instances + 1);
        sim::RunConfig cfg;
        cfg.seed = instances * 7 + 3;
        const sim::RunResult res = w.run(core::make_elect_protocol(), cfg);
        ASSERT_TRUE(res.completed)
            << cg.name << " r=" << r << " #" << instances;
        EXPECT_EQ(res.clean_election(), plan.final_gcd == 1)
            << cg.name << " r=" << r << " #" << instances;
        EXPECT_EQ(res.clean_failure(), plan.final_gcd != 1)
            << cg.name << " r=" << r << " #" << instances;
        ++instances;
        if (plan.final_gcd == 1) {
          ++elections;
        } else {
          ++failures;
        }
      }
    }
  }
  // The sweep covers hundreds of instances and both outcome kinds amply.
  EXPECT_GT(instances, 300u);
  EXPECT_GT(elections, 100u);
  EXPECT_GT(failures, 30u);
}

TEST(Exhaustive, MessageWorldAgreesOnSampledPlacements) {
  // Every 7th placement also runs through the Figure 1 transformation.
  std::size_t counter = 0;
  for (const CatalogGraph& cg : catalog()) {
    const std::size_t n = cg.g.node_count();
    for (std::size_t r = 1; r <= n; ++r) {
      for (const Placement& p : graph::enumerate_placements(n, r)) {
        if (++counter % 7 != 0) continue;
        const auto plan = core::protocol_plan(cg.g, p);
        sim::MessageWorld w(cg.g, p, counter);
        const auto res = w.run(core::make_elect_protocol(), {});
        ASSERT_TRUE(res.completed) << cg.name << " #" << counter;
        EXPECT_EQ(res.clean_election(), plan.final_gcd == 1)
            << cg.name << " #" << counter;
      }
    }
  }
}

TEST(Exhaustive, MoveBudgetHoldsEverywhere) {
  // Theorem 3.1's O(r |E|) with one shared constant across the whole
  // catalog -- a much stronger statement than per-family checks.
  constexpr std::size_t kConstant = 64;
  for (const CatalogGraph& cg : catalog()) {
    const std::size_t n = cg.g.node_count();
    for (std::size_t r = 1; r <= n; ++r) {
      std::size_t index = 0;
      for (const Placement& p : graph::enumerate_placements(n, r)) {
        if (++index % 3 != 0) continue;  // sample within the sweep
        sim::World w(cg.g, p, index);
        const auto res = w.run(core::make_elect_protocol(), {});
        ASSERT_TRUE(res.completed);
        EXPECT_LE(res.total_moves,
                  kConstant * p.agent_count() * cg.g.edge_count() + kConstant)
            << cg.name << " r=" << r;
      }
    }
  }
}

}  // namespace
}  // namespace qelect
