// Golden-equivalence property tests for the fast-path iso/views engine.
//
// The worklist refinement (refinement.cpp), the root-parallel canonical
// search (canonical.cpp), and the DAG view builder/encoder (views.cpp) are
// all rewrites of seed algorithms that must be *behavior-preserving*: same
// colorings, same certificates, same encodings, byte for byte.  The seed
// implementations live on under iso::reference / views::reference, and
// these tests compare the two across randomized instance families --
// rings, tori, hypercubes, Petersen graphs, random connected graphs and
// trees, random placements, random initial colorings, and random
// locally-distinct edge labelings.  Each suite walks well over 200 seeded
// instances (asserted explicitly), so a regression in any branch of the
// new code paths has to reproduce the seed's output exactly to slip by.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "qelect/graph/families.hpp"
#include "qelect/graph/labeling.hpp"
#include "qelect/graph/placement.hpp"
#include "qelect/iso/canonical.hpp"
#include "qelect/iso/colored_digraph.hpp"
#include "qelect/iso/reference.hpp"
#include "qelect/iso/refinement.hpp"
#include "qelect/views/reference.hpp"
#include "qelect/views/views.hpp"

namespace qelect {
namespace {

using graph::EdgeLabeling;
using graph::Graph;
using graph::NodeId;
using graph::Placement;
using graph::PortId;

Placement random_placement(const Graph& g, std::mt19937_64& rng) {
  std::vector<NodeId> bases;
  for (NodeId x = 0; x < g.node_count(); ++x) {
    if (rng() % 3 == 0) bases.push_back(x);
  }
  return Placement(g.node_count(), std::move(bases));
}

// A random locally-distinct labeling: each node hands out a shuffled
// permutation of {0, ..., deg-1} across its ports.
EdgeLabeling random_labeling(const Graph& g, std::mt19937_64& rng) {
  EdgeLabeling l = EdgeLabeling::zeros(g);
  for (NodeId x = 0; x < g.node_count(); ++x) {
    std::vector<graph::Symbol> symbols(g.degree(x));
    for (PortId p = 0; p < g.degree(x); ++p) symbols[p] = p;
    std::shuffle(symbols.begin(), symbols.end(), rng);
    for (PortId p = 0; p < g.degree(x); ++p) l.set(x, p, symbols[p]);
  }
  return l;
}

iso::Coloring random_coloring(std::size_t n, std::mt19937_64& rng) {
  iso::Coloring c(n);
  // Sparse color values on purpose: normalize_coloring has to renumber.
  for (std::uint32_t& v : c) v = static_cast<std::uint32_t>(rng() % (n + 3)) * 7;
  return c;
}

std::vector<Graph> base_graphs() {
  std::vector<Graph> out;
  for (std::size_t n = 3; n <= 12; ++n) out.push_back(graph::ring(n));
  out.push_back(graph::path(7));
  out.push_back(graph::complete(5));
  out.push_back(graph::complete_bipartite(3, 3));
  out.push_back(graph::star(5));
  out.push_back(graph::hypercube(2));
  out.push_back(graph::hypercube(3));
  out.push_back(graph::hypercube(4));
  out.push_back(graph::torus({3, 4}));
  out.push_back(graph::torus({4, 4}));
  out.push_back(graph::torus({2, 3, 4}));
  out.push_back(graph::circulant(11, {1, 2, 3}));
  out.push_back(graph::petersen());
  out.push_back(graph::generalized_petersen(7, 2));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    out.push_back(graph::random_connected(9, 0.3, seed));
    out.push_back(graph::random_tree(10, seed));
  }
  return out;
}

// Bi-colored and edge-labeled digraph instances: every base graph under an
// empty placement, several random placements, and several random labelings.
std::vector<iso::ColoredDigraph> digraph_instances() {
  std::vector<iso::ColoredDigraph> out;
  std::mt19937_64 rng(20260806);
  for (const Graph& g : base_graphs()) {
    out.push_back(
        iso::from_bicolored_graph(g, Placement::empty(g.node_count())));
    for (int k = 0; k < 3; ++k) {
      out.push_back(iso::from_bicolored_graph(g, random_placement(g, rng)));
    }
    for (int k = 0; k < 2; ++k) {
      out.push_back(iso::from_labeled_graph(g, random_placement(g, rng),
                                            random_labeling(g, rng)));
    }
  }
  return out;
}

TEST(GoldenRefine, FixedPointMatchesSeedByteForByte) {
  std::size_t checked = 0;
  for (const auto& g : digraph_instances()) {
    SCOPED_TRACE(checked);
    EXPECT_EQ(iso::refine(g), iso::reference::refine(g));
    ++checked;
  }
  EXPECT_GE(checked, 200u);
}

TEST(GoldenRefine, RandomInitialColoringsMatchSeed) {
  std::mt19937_64 rng(7);
  std::size_t checked = 0;
  for (const auto& g : digraph_instances()) {
    SCOPED_TRACE(checked);
    const iso::Coloring init = random_coloring(g.node_count(), rng);
    EXPECT_EQ(iso::refine(g, init), iso::reference::refine(g, init));
    ++checked;
  }
  EXPECT_GE(checked, 200u);
}

TEST(GoldenRefine, BoundedRoundsMatchSeedAtEveryDepth) {
  std::mt19937_64 rng(11);
  std::size_t checked = 0;
  for (const auto& g : digraph_instances()) {
    const iso::Coloring init = random_coloring(g.node_count(), rng);
    for (std::size_t rounds = 0; rounds <= 3; ++rounds) {
      SCOPED_TRACE(checked);
      EXPECT_EQ(iso::refine_rounds(g, init, rounds),
                iso::reference::refine_rounds(g, init, rounds));
      ++checked;
    }
  }
  EXPECT_GE(checked, 200u);
}

TEST(GoldenCanonical, CertificatesMatchSeed) {
  std::size_t checked = 0;
  for (const auto& g : digraph_instances()) {
    SCOPED_TRACE(checked);
    const iso::CanonicalForm fast = iso::canonical_form(g);
    const iso::CanonicalForm seed = iso::reference::canonical_form(g);
    EXPECT_EQ(fast.certificate, seed.certificate);
    // The labeling must realize the certificate (it need not be the same
    // permutation the seed picked when the graph has automorphisms).
    EXPECT_EQ(iso::certificate_under(g, fast.labeling), fast.certificate);
    ++checked;
  }
  EXPECT_GE(checked, 200u);
}

TEST(GoldenCanonical, RootParallelSearchMatchesSequential) {
  std::size_t checked = 0;
  iso::CanonicalOptions par;
  par.root_parallelism = 4;
  for (const auto& g : digraph_instances()) {
    SCOPED_TRACE(checked);
    const iso::CanonicalForm fast = iso::canonical_form(g, par);
    EXPECT_EQ(fast.certificate, iso::reference::canonical_certificate(g));
    EXPECT_EQ(iso::certificate_under(g, fast.labeling), fast.certificate);
    for (const auto& gamma : fast.discovered_automorphisms) {
      EXPECT_TRUE(iso::is_automorphism(g, gamma));
    }
    ++checked;
  }
  EXPECT_GE(checked, 200u);
}

TEST(GoldenViews, EncodingsMatchSeedAcrossDepths) {
  std::mt19937_64 rng(13);
  std::size_t checked = 0;
  for (const Graph& g : base_graphs()) {
    const Placement p = random_placement(g, rng);
    const EdgeLabeling l = random_labeling(g, rng);
    for (std::size_t depth = 0; depth <= 3; ++depth) {
      const NodeId root = static_cast<NodeId>(rng() % g.node_count());
      SCOPED_TRACE(checked);
      const auto seed_word =
          views::reference::encode_view(
              views::reference::build_view(g, p, l, root, depth));
      EXPECT_EQ(views::encode_view(views::build_view(g, p, l, root, depth)),
                seed_word);
      EXPECT_EQ(views::view_encoding(g, p, l, root, depth), seed_word);
      ++checked;
    }
  }
  // Every node of a few fully symmetric graphs, where subtree sharing in
  // the arena is maximal and any memo mix-up would collide encodings.
  for (const Graph& g : {graph::ring(8), graph::hypercube(3)}) {
    const Placement p = Placement::empty(g.node_count());
    const EdgeLabeling l = EdgeLabeling::from_ports(g);
    views::ViewArena arena(g, p, l);
    for (NodeId root = 0; root < g.node_count(); ++root) {
      SCOPED_TRACE(checked);
      EXPECT_EQ(arena.encoding(arena.view(root, 4)),
                views::reference::encode_view(
                    views::reference::build_view(g, p, l, root, 4)));
      ++checked;
    }
  }
  EXPECT_GE(checked, 130u);
}

TEST(GoldenViews, QualitativeEncodingsMatchSeed) {
  std::mt19937_64 rng(17);
  std::size_t checked = 0;
  for (const Graph& g : base_graphs()) {
    if (g.node_count() > 10) continue;
    const Placement p = random_placement(g, rng);
    const EdgeLabeling l = random_labeling(g, rng);
    const NodeId root = static_cast<NodeId>(rng() % g.node_count());
    const views::ViewTree fast = views::build_view(g, p, l, root, 2);
    const views::ViewTree seed =
        views::reference::build_view(g, p, l, root, 2);
    SCOPED_TRACE(checked);
    EXPECT_EQ(views::encode_view_qualitative(fast),
              views::reference::encode_view_qualitative(seed));
    ++checked;
  }
  EXPECT_GE(checked, 15u);
}

}  // namespace
}  // namespace qelect
