// Tests for the trace & replay subsystem: sinks (counting, ring, JSONL),
// schedule recording, deterministic re-execution via SchedulerPolicy::
// Replay, the JSONL round trip, and the trace-driven invariant checkers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/core/petersen.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/message_world.hpp"
#include "qelect/sim/replay.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/trace/counting_sink.hpp"
#include "qelect/trace/invariants.hpp"
#include "qelect/trace/jsonl_sink.hpp"
#include "qelect/trace/ring_sink.hpp"
#include "qelect/trace/schedule.hpp"
#include "qelect/trace/sink.hpp"
#include "qelect/util/assert.hpp"

namespace qelect {
namespace {

using sim::AgentCtx;
using sim::Behavior;
using sim::RunConfig;
using sim::Sign;
using sim::Whiteboard;

sim::Behavior walker(AgentCtx& ctx) {
  co_await ctx.board([&](Whiteboard& wb) {
    wb.post(Sign{ctx.self(), 200, {}});
  });
  for (int i = 0; i < 5; ++i) co_await ctx.move(0);
  ctx.declare_failure_detected();
}

TEST(CountingSink, MatchesRunResultCounters) {
  sim::World w(graph::ring(6), graph::Placement(6, {0, 3}), 7);
  trace::CountingSink sink;
  RunConfig cfg;
  cfg.sink = &sink;
  const sim::RunResult r = w.run(walker, cfg);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(sink.agents().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(sink.agents()[i].moves, r.agents[i].moves);
    EXPECT_EQ(sink.agents()[i].board_accesses, r.agents[i].board_accesses);
  }
  std::uint64_t node_boards = 0;
  for (const auto& n : sink.nodes()) node_boards += n.board_accesses;
  EXPECT_EQ(node_boards, r.total_board_accesses);
  EXPECT_EQ(sink.summary().total_moves, r.total_moves);
  // Both agents post exactly once, at their distinct home bases.
  EXPECT_EQ(sink.max_node_contention(), 1u);
}

TEST(CountingSink, MeasuresWaitLatency) {
  // Agent 0 waits for a sign only agent 1 (after a move + board) can post;
  // under round-robin the waiter's resume comes strictly after the
  // poster's steps, so a positive wait latency must be recorded.
  const graph::Graph g = graph::path(2);
  sim::World w(g, graph::Placement(2, {0, 1}), 3);
  const auto colors = w.agent_colors();
  const sim::Color waiter = colors[0];
  trace::CountingSink sink;
  RunConfig cfg;
  cfg.policy = sim::SchedulerPolicy::RoundRobin;
  cfg.sink = &sink;
  const sim::RunResult r = w.run(
      [waiter](AgentCtx& ctx) -> Behavior {
        if (ctx.self() == waiter) {
          co_await ctx.wait_until([](const Whiteboard& wb) {
            return wb.find_tag(91) != nullptr;
          });
          ctx.declare_leader();
        } else {
          co_await ctx.move(0);
          co_await ctx.board([&](Whiteboard& wb) {
            wb.post(Sign{ctx.self(), 91, {}});
          });
          ctx.declare_defeated(waiter);
        }
      },
      cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(sink.agents()[0].wait_resumes, 1u);
  EXPECT_GT(sink.max_wait_latency(), 0u);
}

TEST(RingSink, KeepsOnlyTheTailInOrder) {
  sim::World w(graph::ring(8), graph::Placement(8, {0}), 5);
  trace::RingSink sink(4);
  RunConfig cfg;
  cfg.sink = &sink;
  const sim::RunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        for (int i = 0; i < 10; ++i) co_await ctx.move(0);
        ctx.declare_leader();
      },
      cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(sink.total_events(), r.steps);
  EXPECT_EQ(sink.dropped(), r.steps - 4);
  const auto tail = sink.snapshot();
  ASSERT_EQ(tail.size(), 4u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].step, r.steps - 4 + i);
  }
}

TEST(TeeSink, FansOutToAllSinks) {
  sim::World w(graph::ring(6), graph::Placement(6, {0, 3}), 7);
  trace::VectorSink a;
  trace::CountingSink b;
  trace::TeeSink tee({&a, &b});
  RunConfig cfg;
  cfg.sink = &tee;
  const sim::RunResult r = w.run(walker, cfg);
  EXPECT_EQ(a.events().size(), r.steps);
  EXPECT_EQ(b.summary().steps, r.steps);
}

TEST(JsonlSink, WritesMetaEventsSummary) {
  std::ostringstream out;
  sim::World w(graph::ring(6), graph::Placement(6, {0, 3}), 7);
  trace::JsonlSink sink(out);
  RunConfig cfg;
  cfg.sink = &sink;
  cfg.trace_label = "ring6 \"test\"";
  const sim::RunResult r = w.run(walker, cfg);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(text.find("\"label\":\"ring6 \\\"test\\\"\""), std::string::npos);
  EXPECT_NE(text.find("\"policy\":\"random\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"summary\""), std::string::npos);
  EXPECT_NE(text.find("\"config_hash\":\""), std::string::npos);
  EXPECT_EQ(sink.events_written(), r.steps);
  // One meta line + one line per event + one summary line.
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, r.steps + 2);
}

TEST(JsonlSink, ConfigHashIdentifiesConfiguration) {
  trace::RunMetadata a;
  a.label = "x";
  a.seed = 1;
  trace::RunMetadata b = a;
  EXPECT_EQ(a.config_hash(), b.config_hash());
  b.seed = 2;
  EXPECT_NE(a.config_hash(), b.config_hash());
}

TEST(Schedule, LoadFromJsonlMatchesRecorder) {
  std::ostringstream out;
  sim::World w(graph::ring(6), graph::Placement(6, {0, 2, 4}), 11);
  trace::JsonlSink jsonl(out);
  RunConfig cfg;
  cfg.seed = 5;
  cfg.sink = &jsonl;
  const sim::RecordedRun recorded = sim::record_run(w, walker, cfg);
  std::istringstream in(out.str());
  const trace::Schedule loaded = trace::load_schedule_jsonl(in);
  EXPECT_EQ(loaded, recorded.schedule);
}

// The ISSUE acceptance scenario: a seeded-random run on the Petersen
// instance, recorded to a JSONL file, replayed via SchedulerPolicy::Replay
// from the schedule loaded back out of that file, with the verifier
// confirming identical RunResults.
TEST(Replay, PetersenJsonlRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/qelect_petersen_trace.jsonl";
  const graph::Graph g = graph::petersen();
  const graph::Placement p(10, {0, 5});
  sim::World w(g, p, 41);
  RunConfig cfg;
  cfg.seed = 97;
  cfg.trace_label = "petersen {0,5}";
  sim::RecordedRun recorded;
  {
    trace::JsonlSink jsonl(path);
    cfg.sink = &jsonl;
    recorded = sim::record_run(w, core::make_petersen_protocol(), cfg);
  }
  ASSERT_TRUE(recorded.result.clean_election());
  cfg.sink = nullptr;
  const trace::Schedule loaded = trace::load_schedule_jsonl_file(path);
  EXPECT_EQ(loaded, recorded.schedule);
  const sim::ReplayVerification v = sim::verify_replay(
      w, core::make_petersen_protocol(), cfg, recorded.result, loaded);
  EXPECT_TRUE(v.identical) << v.divergence;
  std::remove(path.c_str());
}

TEST(Replay, ElectRoundTripOnHypercube) {
  sim::World w(graph::hypercube(3), graph::Placement(8, {0, 3, 5}), 23);
  RunConfig cfg;
  cfg.seed = 6;
  const sim::RecordedRun recorded =
      sim::record_run(w, core::make_elect_protocol(), cfg);
  ASSERT_TRUE(recorded.result.completed);
  const sim::ReplayVerification v = sim::verify_replay(
      w, core::make_elect_protocol(), cfg, recorded.result,
      recorded.schedule);
  EXPECT_TRUE(v.identical) << v.divergence;
}

TEST(Replay, MessageWorldRoundTrip) {
  sim::MessageWorld w(graph::ring(6), graph::Placement(6, {0, 2}), 17);
  RunConfig cfg;
  cfg.seed = 12;
  const sim::RecordedMessageRun recorded =
      sim::record_run(w, core::make_elect_protocol(), cfg);
  ASSERT_TRUE(recorded.result.completed);
  const sim::ReplayVerification v = sim::verify_replay(
      w, core::make_elect_protocol(), cfg, recorded.result,
      recorded.schedule);
  EXPECT_TRUE(v.identical) << v.divergence;
}

TEST(MessageWorld, EmitsSendAndDeliverEvents) {
  sim::MessageWorld w(graph::ring(6), graph::Placement(6, {0, 3}), 7);
  trace::VectorSink sink;
  RunConfig cfg;
  cfg.sink = &sink;
  const sim::MessageRunResult r = w.run(walker, cfg);
  ASSERT_TRUE(r.completed);
  std::size_t sends = 0, delivers = 0;
  for (const auto& e : sink.events()) {
    if (e.kind == trace::TraceEvent::Kind::Send) ++sends;
    if (e.kind == trace::TraceEvent::Kind::Deliver) ++delivers;
  }
  EXPECT_EQ(sends, r.messages_delivered);
  EXPECT_EQ(delivers, r.messages_delivered);
  EXPECT_EQ(delivers, r.total_moves);
}

TEST(Invariants, CleanElectTracePasses) {
  const graph::Graph g = graph::hypercube(3);
  const graph::Placement p(8, {0, 3, 5});
  sim::World w(g, p, 23);
  trace::VectorSink sink;
  RunConfig cfg;
  cfg.sink = &sink;
  const sim::RunResult r = w.run(core::make_elect_protocol(), cfg);
  ASSERT_TRUE(r.completed);
  trace::InvariantSpec spec;
  spec.graph = &g;
  spec.home_bases = p.home_bases();
  // ELECT measures at ~2-4 r|E| budgets; 16 is a comfortable certificate.
  spec.theorem31_factor = 16.0;
  const trace::InvariantReport report = trace::check_trace(sink.events(), spec);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.total_moves, r.total_moves);
  EXPECT_LE(report.total_moves,
            16 * core::theorem31_move_budget(g, p));
}

TEST(Invariants, MessageWorldTracePasses) {
  const graph::Graph g = graph::ring(6);
  const graph::Placement p(6, {0, 2});
  sim::MessageWorld w(g, p, 17);
  trace::VectorSink sink;
  RunConfig cfg;
  cfg.sink = &sink;
  const sim::MessageRunResult r = w.run(core::make_elect_protocol(), cfg);
  ASSERT_TRUE(r.completed);
  trace::InvariantSpec spec;
  spec.graph = &g;
  spec.home_bases = p.home_bases();
  const trace::InvariantReport report = trace::check_trace(sink.events(), spec);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Invariants, DetectsInvalidPort) {
  const graph::Graph g = graph::ring(4);  // every node has degree 2
  trace::InvariantSpec spec;
  spec.graph = &g;
  spec.home_bases = {0};
  std::vector<trace::TraceEvent> events;
  events.push_back({0, 0, trace::TraceEvent::Kind::Move, 1, 7});  // port 7!
  const trace::InvariantReport report = trace::check_trace(events, spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("nonexistent port"),
            std::string::npos);
}

TEST(Invariants, DetectsTeleport) {
  const graph::Graph g = graph::ring(6);
  trace::InvariantSpec spec;
  spec.graph = &g;
  spec.home_bases = {0};
  std::vector<trace::TraceEvent> events;
  // Port 0 of node 0 leads to node 1, but the event claims node 3.
  events.push_back({0, 0, trace::TraceEvent::Kind::Move, 3, 0});
  const trace::InvariantReport report = trace::check_trace(events, spec);
  ASSERT_FALSE(report.ok());
}

TEST(Invariants, DetectsBrokenStepOrder) {
  const graph::Graph g = graph::ring(4);
  trace::InvariantSpec spec;
  spec.graph = &g;
  spec.home_bases = {0, 2};
  std::vector<trace::TraceEvent> events;
  events.push_back({5, 0, trace::TraceEvent::Kind::Board, 0, trace::kNoPort});
  events.push_back({5, 1, trace::TraceEvent::Kind::Board, 2, trace::kNoPort});
  const trace::InvariantReport report = trace::check_trace(events, spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("atomicity"), std::string::npos);
}

TEST(Invariants, DetectsTheorem31Blowout) {
  const graph::Graph g = graph::ring(4);
  trace::InvariantSpec spec;
  spec.graph = &g;
  spec.home_bases = {0};
  spec.theorem31_factor = 1.0;  // budget: 1 * 1 * 4 = 4 moves
  std::vector<trace::TraceEvent> events;
  graph::NodeId at = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {  // 6 legal moves > budget 4
    const graph::NodeId next = g.peer(at, 0).to;
    events.push_back({s, 0, trace::TraceEvent::Kind::Move, next, 0});
    at = next;
  }
  const trace::InvariantReport report = trace::check_trace(events, spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("Theorem 3.1"), std::string::npos);
}

TEST(Invariants, RingWindowChecksWithoutHomeBases) {
  // A RingSink tail starts mid-run: positions are unknown until each
  // agent's first event, but step-order and port checks still apply.
  sim::World w(graph::ring(8), graph::Placement(8, {0, 4}), 5);
  trace::RingSink sink(8);
  RunConfig cfg;
  cfg.sink = &sink;
  const sim::RunResult r = w.run(walker, cfg);
  ASSERT_TRUE(r.completed);
  const graph::Graph g = graph::ring(8);
  trace::InvariantSpec spec;
  spec.graph = &g;
  spec.home_bases = {0, 4};
  const trace::InvariantReport report =
      trace::check_trace(sink.snapshot(), spec, /*complete_trace=*/false);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
}  // namespace qelect
