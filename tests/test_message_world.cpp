// Tests for the Figure 1 transformation: all mobile-agent protocols must
// stay correct when executed as messages in an anonymous processor network
// (Theorem 2.1's reduction), and the message accounting must line up with
// the mobile model's move accounting.
#include <gtest/gtest.h>

#include <memory>

#include "qelect/core/analysis.hpp"
#include "qelect/core/baselines.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/core/gather.hpp"
#include "qelect/core/petersen.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/message_world.hpp"
#include "qelect/util/assert.hpp"

namespace qelect::sim {
namespace {

using graph::Placement;

TEST(MessageWorld, SingleWalkerDeliversEveryMove) {
  MessageWorld w(graph::ring(6), Placement(6, {0}), 3);
  const MessageRunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        for (int i = 0; i < 12; ++i) co_await ctx.move(0);
        ctx.declare_leader();
      },
      RunConfig{});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.total_moves, 12u);
  EXPECT_EQ(r.messages_delivered, 12u);
  EXPECT_EQ(r.agents[0].final_position, 0u);
  EXPECT_EQ(r.max_in_transit, 1u);
}

TEST(MessageWorld, TransitIsObservableByOthers) {
  // While agent A is in flight, agent B can see A's sign is absent at the
  // destination -- transit genuinely takes time under RoundRobin.
  // (Indirect check: a two-agent ping-pong completes without deadlock and
  // the peak in-transit count reaches 2 under lockstep.)
  MessageWorld w(graph::ring(4), Placement(4, {0, 2}), 5);
  RunConfig cfg;
  cfg.policy = SchedulerPolicy::Lockstep;
  const MessageRunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        for (int i = 0; i < 8; ++i) co_await ctx.move(0);
        ctx.declare_failure_detected();
      },
      cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.max_in_transit, 2u);
}

TEST(MessageWorld, ElectMatchesOracleUnderMessagePassing) {
  struct Inst {
    graph::Graph g;
    Placement p;
  };
  const std::vector<Inst> insts = {
      {graph::ring(6), Placement(6, {0, 2})},
      {graph::ring(6), Placement(6, {0, 3})},
      {graph::ring(5), Placement(5, {0, 1})},
      {graph::hypercube(3), Placement(8, {0, 3, 5})},
      {graph::hypercube(3), Placement(8, {0, 7})},
  };
  for (const auto& inst : insts) {
    const auto plan = core::protocol_plan(inst.g, inst.p);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      MessageWorld w(inst.g, inst.p, seed * 10 + 1);
      RunConfig cfg;
      cfg.seed = seed;
      const MessageRunResult r = w.run(core::make_elect_protocol(), cfg);
      ASSERT_TRUE(r.completed) << inst.g.describe();
      EXPECT_EQ(r.clean_election(), plan.final_gcd == 1);
      EXPECT_EQ(r.clean_failure(), plan.final_gcd != 1);
      EXPECT_EQ(r.messages_delivered, r.total_moves);
    }
  }
}

TEST(MessageWorld, GatherStillConverges) {
  const graph::Graph g = graph::torus({3, 3});
  const Placement p(9, {0, 4});
  ASSERT_EQ(core::protocol_plan(g, p).final_gcd, 1u);
  MessageWorld w(g, p, 7);
  const MessageRunResult r = w.run(core::make_gather_protocol(), {});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.clean_election());
  EXPECT_EQ(r.agents[0].final_position, r.agents[1].final_position);
}

TEST(MessageWorld, PetersenRaceStillElects) {
  MessageWorld w(graph::petersen(), Placement(10, {0, 5}), 9);
  const MessageRunResult r = w.run(core::make_petersen_protocol(), {});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.clean_election());
}

TEST(MessageWorld, QuantitativeBaselineWorks) {
  MessageWorld w = MessageWorld::quantitative(graph::ring(6),
                                              Placement(6, {0, 3}), 11);
  const MessageRunResult r = w.run(core::make_quantitative_protocol(), {});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.clean_election());
}

TEST(MessageWorld, DeadlockDetectedWithNoTransit) {
  MessageWorld w(graph::ring(4), Placement(4, {0}), 2);
  const MessageRunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        co_await ctx.wait_until(
            [](const Whiteboard& wb) { return wb.count_tag(999) > 0; });
      },
      RunConfig{});
  EXPECT_TRUE(r.deadlock);
}

TEST(MessageWorld, StepLimitRespected) {
  MessageWorld w(graph::ring(4), Placement(4, {0}), 2);
  RunConfig cfg;
  cfg.max_steps = 9;
  const MessageRunResult r = w.run(
      [](AgentCtx& ctx) -> Behavior {
        for (;;) co_await ctx.move(0);
      },
      cfg);
  EXPECT_TRUE(r.step_limit);
  EXPECT_EQ(r.steps, 9u);
}

TEST(MessageWorld, BadPortThrows) {
  MessageWorld w(graph::ring(4), Placement(4, {0}), 2);
  EXPECT_THROW(w.run(
                   [](AgentCtx& ctx) -> Behavior {
                     co_await ctx.move(7);
                   },
                   RunConfig{}),
               CheckError);
}

TEST(MessageWorld, MobileAndMessageModelsAgreeOnOutcome) {
  // The transformation preserves protocol semantics: on a batch of seeds,
  // the mobile World and the MessageWorld agree on the election outcome
  // (they need not agree on traces -- transit reorders interleavings).
  const graph::Graph g = graph::ring(6);
  const Placement p(6, {0, 2});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    World mobile(g, p, seed);
    RunConfig cfg;
    cfg.seed = seed;
    const RunResult a = mobile.run(core::make_elect_protocol(), cfg);
    MessageWorld network(g, p, seed);
    const MessageRunResult b = network.run(core::make_elect_protocol(), cfg);
    ASSERT_TRUE(a.completed && b.completed);
    EXPECT_EQ(a.clean_election(), b.clean_election());
  }
}

}  // namespace
}  // namespace qelect::sim
