// Service and server tests: opcode semantics, the campaign golden
// cross-check (a RUN_ELECT answer must be bit-identical to the metrics of
// the equivalent campaign task), response-cache memoization, compute-bound
// rejection, and an end-to-end multi-threaded client/server exchange over
// loopback (the test CI also runs under TSan).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "qelect/campaign/task.hpp"
#include "qelect/campaign/workloads.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/graph/placement.hpp"
#include "qelect/serve/client.hpp"
#include "qelect/serve/server.hpp"
#include "qelect/serve/service.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/util/assert.hpp"
#include "qelect/util/cancel.hpp"

namespace qelect::serve {
namespace {

double metric(const std::vector<std::pair<std::string, double>>& metrics,
              const std::string& key) {
  for (const auto& [k, v] : metrics) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "no metric '" << key << "'";
  return std::nan("");
}

ElectableResponse electable(Service& service, const InstanceRef& inst,
                            ResponseCache* cache = nullptr) {
  ElectableResponse resp;
  EXPECT_TRUE(decode_electable_response(
      service.handle(static_cast<std::uint16_t>(Opcode::kElectable),
                     encode_electable_request(inst), cache),
      &resp));
  return resp;
}

TEST(Service, PingReturnsOk) {
  Service service;
  const auto resp =
      service.handle(static_cast<std::uint16_t>(Opcode::kPing), {});
  WireReader r(resp);
  EXPECT_EQ(r.u32(), kStatusOk);
  EXPECT_TRUE(r.done());
}

TEST(Service, ElectableMatchesTheory) {
  Service service;
  // Ring of 6 with antipodal agents: symmetric, gcd 2, not electable
  // (and a Cayley impossibility per the corrected Theorem 4.1).
  auto resp = electable(service, {"ring", {6}, {0, 3}});
  ASSERT_EQ(resp.head.status, kStatusOk) << resp.head.error;
  EXPECT_EQ(resp.electable, 0);
  EXPECT_EQ(resp.final_gcd, 2u);
  EXPECT_EQ(resp.nodes, 6u);
  EXPECT_EQ(static_cast<double>(resp.classification),
            campaign::kClassImpossCayley);

  // Asymmetric placement on a path: electable.
  resp = electable(service, {"path", {5}, {0, 1}});
  ASSERT_EQ(resp.head.status, kStatusOk) << resp.head.error;
  EXPECT_EQ(resp.electable, 1);
  EXPECT_EQ(resp.final_gcd, 1u);
  EXPECT_EQ(static_cast<double>(resp.classification), campaign::kClassElect);
}

TEST(Service, ElectableAgreesWithCampaignAnalyze) {
  Service service;
  const std::vector<InstanceRef> instances = {
      {"ring", {6}, {0, 3}},
      {"ring", {6}, {0, 2}},
      {"hypercube", {3}, {0, 7}},
      {"petersen", {}, {0, 1}},
      {"complete", {4}, {0, 1, 2, 3}},
  };
  for (const auto& inst : instances) {
    campaign::TaskSpec task;
    task.key = "golden";
    task.workload = "analyze";
    task.graph.family = inst.family;
    task.graph.params.assign(inst.params.begin(), inst.params.end());
    task.home_bases.assign(inst.home_bases.begin(), inst.home_bases.end());
    const auto metrics = campaign::run_task(task, CancelToken());

    const auto resp = electable(service, inst);
    ASSERT_EQ(resp.head.status, kStatusOk) << resp.head.error;
    EXPECT_EQ(static_cast<double>(resp.classification),
              metric(metrics, "class"))
        << inst.family;
    EXPECT_EQ(static_cast<double>(resp.final_gcd),
              metric(metrics, "final_gcd"))
        << inst.family;
    EXPECT_EQ(resp.electable,
              metric(metrics, "class") == campaign::kClassElect ? 1 : 0)
        << inst.family;
  }
}

// The acceptance-criteria golden cross-check: RUN_ELECT with a fixed seed
// returns exactly the verdict and move counts of the equivalent campaign
// elect task.
TEST(Service, RunElectMatchesCampaignTaskExactly) {
  Service service;
  const std::vector<std::uint64_t> seeds = {1, 7, 99};
  const std::vector<std::string> schedulers = {"random", "round-robin",
                                               "lockstep"};
  for (const std::uint64_t seed : seeds) {
    for (const std::string& scheduler : schedulers) {
      campaign::TaskSpec task;
      task.key = "golden/elect";
      task.workload = "elect";
      task.graph = {"ring", {6}};
      task.home_bases = {0, 2};
      task.color_seed = seed;
      task.scheduler = scheduler;
      const auto metrics = campaign::run_task(task, CancelToken());

      RunElectRequest req;
      req.instance = {"ring", {6}, {0, 2}};
      req.seed = seed;
      req.scheduler = scheduler;
      RunElectResponse resp;
      ASSERT_TRUE(decode_run_elect_response(
          service.handle(static_cast<std::uint16_t>(Opcode::kRunElect),
                         encode_run_elect_request(req)),
          &resp));
      ASSERT_EQ(resp.head.status, kStatusOk) << resp.head.error;
      EXPECT_EQ(resp.completed, metric(metrics, "completed") != 0 ? 1 : 0);
      EXPECT_EQ(resp.clean_election,
                metric(metrics, "clean_election") != 0 ? 1 : 0);
      EXPECT_EQ(resp.clean_failure,
                metric(metrics, "clean_failure") != 0 ? 1 : 0);
      EXPECT_EQ(resp.matches_oracle,
                metric(metrics, "matches_oracle") != 0 ? 1 : 0);
      EXPECT_EQ(static_cast<double>(resp.final_gcd),
                metric(metrics, "final_gcd"));
      EXPECT_EQ(static_cast<double>(resp.moves), metric(metrics, "moves"))
          << "seed " << seed << " scheduler " << scheduler;
      EXPECT_EQ(static_cast<double>(resp.steps), metric(metrics, "steps"))
          << "seed " << seed << " scheduler " << scheduler;
    }
  }
}

TEST(Service, SigmaOnKnownInstances) {
  Service service;
  // sigma(ring(6)) = 6: the all-same labeling is fully symmetric.
  SigmaResponse resp;
  ASSERT_TRUE(decode_sigma_response(
      service.handle(static_cast<std::uint16_t>(Opcode::kSigma),
                     encode_sigma_request({{"ring", {6}, {}}, 0})),
      &resp));
  ASSERT_EQ(resp.head.status, kStatusOk) << resp.head.error;
  EXPECT_EQ(resp.sigma, 6u);
  EXPECT_EQ(resp.alphabet, 2u);  // max degree of a ring
  EXPECT_EQ(resp.labelings, 64u);
}

TEST(Service, SigmaRefusesBlownBudget) {
  ServiceLimits limits;
  limits.sigma_budget = 10;  // ring(6) needs 64 labelings
  Service service(limits);
  SigmaResponse resp;
  ASSERT_TRUE(decode_sigma_response(
      service.handle(static_cast<std::uint16_t>(Opcode::kSigma),
                     encode_sigma_request({{"ring", {6}, {}}, 0})),
      &resp));
  EXPECT_EQ(resp.head.status, kStatusTooLarge);
}

TEST(Service, SigmaRejectsAlphabetBelowDegree) {
  Service service;
  SigmaResponse resp;
  ASSERT_TRUE(decode_sigma_response(
      service.handle(static_cast<std::uint16_t>(Opcode::kSigma),
                     encode_sigma_request({{"hypercube", {3}, {}}, 2})),
      &resp));
  EXPECT_EQ(resp.head.status, kStatusBadRequest);
}

TEST(Service, ViewClassesPartitionTheNodes) {
  Service service;
  ViewClassesResponse resp;
  ASSERT_TRUE(decode_view_classes_response(
      service.handle(static_cast<std::uint16_t>(Opcode::kViewClasses),
                     encode_view_classes_request({"ring", {6}, {0, 3}})),
      &resp));
  ASSERT_EQ(resp.head.status, kStatusOk) << resp.head.error;
  EXPECT_EQ(resp.nodes, 6u);
  std::size_t members = 0;
  for (const auto& cls : resp.classes) members += cls.size();
  EXPECT_EQ(members, 6u);  // classes partition the node set
}

TEST(Service, RejectsUnknownFamilyAndBadPlacement) {
  Service service;
  auto resp = electable(service, {"moebius", {6}, {0}});
  EXPECT_EQ(resp.head.status, kStatusBadRequest);
  EXPECT_FALSE(resp.head.error.empty());

  // Home base out of range.
  resp = electable(service, {"ring", {6}, {17}});
  EXPECT_EQ(resp.head.status, kStatusBadRequest);

  // No agents at all.
  resp = electable(service, {"ring", {6}, {}});
  EXPECT_EQ(resp.head.status, kStatusBadRequest);
}

TEST(Service, RejectsOversizedInstancesBeforeBuilding) {
  Service service;
  // hypercube(40) would be 2^40 nodes; the guard must fire pre-build.
  auto resp = electable(service, {"hypercube", {40}, {0}});
  EXPECT_NE(resp.head.status, kStatusOk);

  // A parameter beyond max_param is refused outright.
  resp = electable(service, {"ring", {1 << 20}, {0}});
  EXPECT_NE(resp.head.status, kStatusOk);

  // torus(10000, 10000) overflows via a parameter product.
  resp = electable(service, {"torus", {10000, 10000}, {0}});
  EXPECT_NE(resp.head.status, kStatusOk);
}

TEST(Service, RejectsMalformedPayloadAndUnknownOpcode) {
  Service service;
  ResponseHead head;
  {
    const auto resp = service.handle(
        static_cast<std::uint16_t>(Opcode::kElectable), {0x01, 0x02});
    WireReader r(resp);
    ASSERT_TRUE(decode_response_head(r, &head));
    EXPECT_EQ(head.status, kStatusBadRequest);
  }
  {
    const auto resp = service.handle(77, {});
    WireReader r(resp);
    ASSERT_TRUE(decode_response_head(r, &head));
    EXPECT_EQ(head.status, kStatusUnknownOpcode);
  }
  EXPECT_EQ(service.counters().errors, 2u);
}

TEST(Service, ResponseCacheServesIdenticalBytes) {
  Service service;
  ResponseCache cache(8);
  const InstanceRef inst{"ring", {6}, {0, 3}};
  const auto key = ResponseCache::key(
      static_cast<std::uint16_t>(Opcode::kElectable),
      encode_electable_request(inst));

  const auto first =
      service.handle(static_cast<std::uint16_t>(Opcode::kElectable),
                     encode_electable_request(inst), &cache);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);

  const auto second =
      service.handle(static_cast<std::uint16_t>(Opcode::kElectable),
                     encode_electable_request(inst), &cache);
  EXPECT_EQ(first, second);  // byte-identical
  EXPECT_EQ(cache.stats().hits, 1u);
  ASSERT_NE(cache.lookup(key), nullptr);
}

TEST(Service, ErrorsAreNotCached) {
  Service service;
  ResponseCache cache(8);
  const InstanceRef bad{"moebius", {6}, {0}};
  service.handle(static_cast<std::uint16_t>(Opcode::kElectable),
                 encode_electable_request(bad), &cache);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResponseCacheTest, EvictsLeastRecentlyUsed) {
  ResponseCache cache(2);
  cache.insert("a", {1});
  cache.insert("b", {2});
  ASSERT_NE(cache.lookup("a"), nullptr);  // refresh a; b is now LRU
  cache.insert("c", {3});                 // evicts b
  EXPECT_EQ(cache.lookup("b"), nullptr);
  EXPECT_NE(cache.lookup("a"), nullptr);
  EXPECT_NE(cache.lookup("c"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.hits + stats.misses, 4u);
}

TEST(Service, StatsReportCountersAndExtras) {
  Service service;
  ResponseCache cache(8);
  electable(service, {"ring", {6}, {0, 3}}, &cache);
  electable(service, {"ring", {6}, {0, 3}}, &cache);  // cache hit

  const std::vector<std::pair<std::string, std::uint64_t>> extra = {
      {"workers", 3}};
  StatsResponse resp;
  ASSERT_TRUE(decode_stats_response(
      service.handle(static_cast<std::uint16_t>(Opcode::kStats), {}, &cache,
                     &extra),
      &resp));
  ASSERT_EQ(resp.head.status, kStatusOk);

  auto counter = [&](const std::string& key) -> std::uint64_t {
    for (const auto& [k, v] : resp.counters) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "missing counter " << key;
    return 0;
  };
  EXPECT_EQ(counter("requests_electable"), 2u);
  EXPECT_EQ(counter("requests_stats"), 1u);
  EXPECT_EQ(counter("response_cache_hits"), 1u);
  EXPECT_EQ(counter("response_cache_misses"), 1u);
  EXPECT_EQ(counter("workers"), 3u);
  // The cert-cache section is present (values depend on suite order).
  counter("cert_cache_hits");
  counter("cert_cache_capacity");
}

// ---- multi-replica RUN_ELECT bursts (batch backend) ----------------------

RunElectResponse run_elect(Service& service, const RunElectRequest& req) {
  RunElectResponse resp;
  EXPECT_TRUE(decode_run_elect_response(
      service.handle(static_cast<std::uint16_t>(Opcode::kRunElect),
                     encode_run_elect_request(req)),
      &resp));
  return resp;
}

// Every replica of a burst must report exactly what a direct scalar World
// run of the same (seed, replica) counter stream reports -- the serve-side
// face of the batch golden gate.
TEST(Service, RunElectBurstMatchesScalarCounterPerReplica) {
  Service service;
  const std::uint32_t kReplicas = 8;
  RunElectRequest req;
  req.instance = {"ring", {5}, {0, 1, 3}};
  req.seed = 7;
  req.scheduler = "counter";
  req.replicas = kReplicas;
  const RunElectResponse resp = run_elect(service, req);
  ASSERT_EQ(resp.head.status, kStatusOk) << resp.head.error;
  ASSERT_EQ(resp.replicas.size(), kReplicas);

  const graph::Graph g = campaign::GraphRef{"ring", {5}}.build();
  const graph::Placement p(g.node_count(), {0, 1, 3});
  bool any_stream_differs = false;
  for (std::uint32_t i = 0; i < kReplicas; ++i) {
    sim::World world(g, p, /*color_seed=*/req.seed);
    sim::RunConfig cfg;
    cfg.policy = sim::SchedulerPolicy::Counter;
    cfg.seed = req.seed;
    cfg.replica = i;
    const sim::RunResult run = world.run(core::make_elect_protocol(), cfg);
    const ReplicaVerdict& v = resp.replicas[i];
    EXPECT_EQ(v.completed, run.completed ? 1 : 0) << "replica " << i;
    EXPECT_EQ(v.clean_election, run.clean_election() ? 1 : 0)
        << "replica " << i;
    EXPECT_EQ(v.clean_failure, run.clean_failure() ? 1 : 0)
        << "replica " << i;
    EXPECT_EQ(v.moves, run.total_moves) << "replica " << i;
    EXPECT_EQ(v.steps, run.steps) << "replica " << i;
    if (run.steps != resp.replicas[0].steps) any_stream_differs = true;
  }
  // The streams are genuinely distinct schedules, not one run repeated.
  EXPECT_TRUE(any_stream_differs);

  // The compatibility fields mirror replica 0.
  EXPECT_EQ(resp.completed, resp.replicas[0].completed);
  EXPECT_EQ(resp.moves, resp.replicas[0].moves);
  EXPECT_EQ(resp.steps, resp.replicas[0].steps);

  // And a single-replica counter request returns exactly replica 0.
  req.replicas = 1;
  const RunElectResponse single = run_elect(service, req);
  ASSERT_EQ(single.head.status, kStatusOk) << single.head.error;
  EXPECT_TRUE(single.replicas.empty());
  EXPECT_EQ(single.completed, resp.replicas[0].completed);
  EXPECT_EQ(single.moves, resp.replicas[0].moves);
  EXPECT_EQ(single.steps, resp.replicas[0].steps);
}

TEST(Service, RunElectBurstRequiresCounterScheduler) {
  Service service;
  RunElectRequest req;
  req.instance = {"ring", {6}, {0, 2}};
  req.scheduler = "random";
  req.replicas = 4;
  const RunElectResponse resp = run_elect(service, req);
  EXPECT_EQ(resp.head.status, kStatusBadRequest);
}

TEST(Service, RunElectBurstRespectsMaxReplicas) {
  ServiceLimits limits;
  limits.max_replicas = 4;
  Service service(limits);
  RunElectRequest req;
  req.instance = {"ring", {6}, {0, 2}};
  req.scheduler = "counter";
  req.replicas = 8;
  const RunElectResponse resp = run_elect(service, req);
  EXPECT_EQ(resp.head.status, kStatusTooLarge);
}

TEST(Service, StatsExposeBatchCounters) {
  Service service;
  auto stats_counter = [&](const std::string& key) -> std::uint64_t {
    StatsResponse resp;
    EXPECT_TRUE(decode_stats_response(
        service.handle(static_cast<std::uint16_t>(Opcode::kStats), {}),
        &resp));
    for (const auto& [k, v] : resp.counters) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "missing counter " << key;
    return 0;
  };
  const std::uint64_t slabs0 = stats_counter("batch_slabs_run");
  const std::uint64_t replicas0 = stats_counter("batch_replicas_run");
  const std::uint64_t hist0 = stats_counter("batch_slab_size_4_7");

  RunElectRequest req;
  req.instance = {"ring", {6}, {0, 2}};
  req.scheduler = "counter";
  req.replicas = 4;
  const RunElectResponse resp = run_elect(service, req);
  ASSERT_EQ(resp.head.status, kStatusOk) << resp.head.error;

  EXPECT_EQ(stats_counter("batch_slabs_run"), slabs0 + 1);
  EXPECT_EQ(stats_counter("batch_replicas_run"), replicas0 + 4);
  EXPECT_EQ(stats_counter("batch_slab_size_4_7"), hist0 + 1);
  stats_counter("batch_scalar_fallbacks");  // present
}

// ---- end-to-end over loopback -------------------------------------------

TEST(Server, EndToEndQueriesOverLoopback) {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.workers = 2;
  Server server(options);
  server.start();
  ASSERT_NE(server.port(), 0);

  Client client = Client::connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ping());

  const auto resp = client.electable({"ring", {6}, {0, 3}});
  ASSERT_EQ(resp.head.status, kStatusOk) << resp.head.error;
  EXPECT_EQ(resp.electable, 0);
  EXPECT_EQ(resp.final_gcd, 2u);

  const auto sigma = client.sigma({{"ring", {6}, {}}, 0});
  ASSERT_EQ(sigma.head.status, kStatusOk) << sigma.head.error;
  EXPECT_EQ(sigma.sigma, 6u);

  const auto run = client.run_elect({{"ring", {6}, {0, 2}}, 7, "random"});
  ASSERT_EQ(run.head.status, kStatusOk) << run.head.error;
  EXPECT_EQ(run.completed, 1);

  const auto stats = client.stats();
  ASSERT_EQ(stats.head.status, kStatusOk);
  EXPECT_FALSE(stats.counters.empty());

  server.stop();
}

TEST(Server, ManyConcurrentClientsGetConsistentAnswers) {
  ServerOptions options;
  options.port = 0;
  options.workers = 4;
  Server server(options);
  server.start();

  constexpr int kClients = 8;
  constexpr int kRequests = 50;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client client = Client::connect("127.0.0.1", server.port());
      for (int i = 0; i < kRequests; ++i) {
        const auto resp = client.electable({"ring", {6}, {0, 3}});
        if (resp.head.status != kStatusOk || resp.electable != 0 ||
            resp.final_gcd != 2) {
          ++failures[t];
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kClients; ++t) EXPECT_EQ(failures[t], 0) << t;
  EXPECT_EQ(server.connections_accepted(),
            static_cast<std::uint64_t>(kClients));
  server.stop();
}

TEST(Server, OversizedFrameGetsErrorThenDisconnect) {
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  options.max_payload = 64;
  Server server(options);
  server.start();

  Client client = Client::connect("127.0.0.1", server.port());
  const std::vector<std::uint8_t> big(128, 0);
  const auto body = client.request(Opcode::kPing, big);
  WireReader r(body);
  EXPECT_EQ(r.u32(), kStatusTooLarge);
  // The connection is closed after the error: the next request fails.
  EXPECT_THROW(client.request(Opcode::kPing, {}), CheckError);
  server.stop();
}

// Sends raw bytes over a plain socket and returns true iff the server
// closed the connection (recv sees EOF) without sending anything back.
bool server_hangs_up_on(std::uint16_t port,
                        const std::vector<std::uint8_t>& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return false;
  }
  ::send(fd, raw.data(), raw.size(), MSG_NOSIGNAL);
  std::uint8_t buf[64];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);  // blocks until close
  ::close(fd);
  return n == 0;
}

TEST(Server, CorruptFramesCloseTheConnection) {
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  Server server(options);
  server.start();

  // Wrong magic: not a frame boundary.
  std::vector<std::uint8_t> garbage(kHeaderSize, 0xAB);
  EXPECT_TRUE(server_hangs_up_on(server.port(), garbage));

  // Valid header, corrupted checksum field.
  auto frame = encode_frame(Opcode::kPing, 5, {1, 2, 3});
  frame[20] ^= 0xFF;
  EXPECT_TRUE(server_hangs_up_on(server.port(), frame));

  // A healthy client still works afterwards.
  Client client = Client::connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ping());
  server.stop();
}

}  // namespace
}  // namespace qelect::serve
