// Unit tests for the group module: group axioms across implementations,
// generating sets, and Cayley graph construction (Definition 1.2).
#include <gtest/gtest.h>

#include "qelect/group/cayley_graph.hpp"
#include "qelect/group/group.hpp"
#include "qelect/util/assert.hpp"

namespace qelect::group {
namespace {

void expect_group_axioms(const Group& g) {
  const std::size_t n = g.size();
  ASSERT_GE(n, 1u);
  // Identity.
  for (Elem a = 0; a < n; ++a) {
    EXPECT_EQ(g.op(0, a), a);
    EXPECT_EQ(g.op(a, 0), a);
  }
  // Inverses.
  for (Elem a = 0; a < n; ++a) {
    EXPECT_EQ(g.op(a, g.inverse(a)), 0u);
    EXPECT_EQ(g.op(g.inverse(a), a), 0u);
  }
  // Associativity (sampled for big groups, exhaustive for small).
  const Elem stride = n > 24 ? 5 : 1;
  for (Elem a = 0; a < n; a += stride) {
    for (Elem b = 0; b < n; b += stride) {
      for (Elem c = 0; c < n; c += stride) {
        EXPECT_EQ(g.op(g.op(a, b), c), g.op(a, g.op(b, c)));
      }
    }
  }
}

TEST(Group, CyclicAxioms) { expect_group_axioms(Group::cyclic(12)); }
TEST(Group, DihedralAxioms) { expect_group_axioms(Group::dihedral(6)); }
TEST(Group, SymmetricAxioms) { expect_group_axioms(Group::symmetric(4)); }
TEST(Group, ProductAxioms) {
  expect_group_axioms(
      Group::direct_product(Group::cyclic(3), Group::dihedral(4)));
}
TEST(Group, BooleanCubeAxioms) { expect_group_axioms(Group::boolean_cube(4)); }

TEST(Group, OrdersAndAbelian) {
  const Group z6 = Group::cyclic(6);
  EXPECT_EQ(z6.order_of(1), 6u);
  EXPECT_EQ(z6.order_of(2), 3u);
  EXPECT_EQ(z6.order_of(3), 2u);
  EXPECT_TRUE(z6.is_abelian());
  const Group d4 = Group::dihedral(4);
  EXPECT_FALSE(d4.is_abelian());
  EXPECT_EQ(d4.size(), 8u);
  // Every reflection (odd ids) is an involution.
  for (Elem a = 1; a < d4.size(); a += 2) EXPECT_EQ(d4.order_of(a), 2u);
  const Group s4 = Group::symmetric(4);
  EXPECT_EQ(s4.size(), 24u);
  EXPECT_FALSE(s4.is_abelian());
  EXPECT_TRUE(Group::boolean_cube(5).is_abelian());
}

TEST(Group, SymmetricInverseRoundTrip) {
  const Group s5 = Group::symmetric(5);
  for (Elem a = 0; a < s5.size(); a += 7) {
    EXPECT_EQ(s5.op(a, s5.inverse(a)), 0u);
  }
}

TEST(Group, GeneratedSubgroup) {
  const Group z12 = Group::cyclic(12);
  EXPECT_EQ(z12.generated_subgroup({4}).size(), 3u);
  EXPECT_EQ(z12.generated_subgroup({4, 6}).size(), 6u);
  EXPECT_TRUE(z12.generates({1}));
  EXPECT_FALSE(z12.generates({4, 6}));
}

TEST(Group, FromTableValidates) {
  // Z_2 table is fine.
  EXPECT_NO_THROW(Group::from_table({{0, 1}, {1, 0}}));
  // Identity not at 0.
  EXPECT_THROW(Group::from_table({{1, 0}, {0, 1}}), CheckError);
  // Non-associative magma.
  EXPECT_THROW(Group::from_table({{0, 1, 2},
                                  {1, 0, 0},
                                  {2, 0, 1}}),
               CheckError);
}

TEST(GeneratingSet, ValidationRules) {
  const Group z6 = Group::cyclic(6);
  EXPECT_NO_THROW(GeneratingSet(z6, {1, 5}));
  EXPECT_THROW(GeneratingSet(z6, {1}), CheckError);        // not symmetric
  EXPECT_THROW(GeneratingSet(z6, {0, 1, 5}), CheckError);  // identity inside
  EXPECT_THROW(GeneratingSet(z6, {2, 4}), CheckError);     // not generating
  const GeneratingSet s = GeneratingSet::symmetrized(z6, {1});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.inverse_index(0), 1u);
  EXPECT_EQ(s.inverse_index(1), 0u);
}

TEST(GeneratingSet, InvolutionIsItsOwnInverse) {
  const Group z6 = Group::cyclic(6);
  const GeneratingSet s = GeneratingSet::symmetrized(z6, {3, 1});
  for (std::size_t i = 0; i < s.size(); ++i) {
    const Elem e = s.elements()[i];
    const Elem inv = s.elements()[s.inverse_index(i)];
    EXPECT_EQ(z6.op(e, inv), 0u);
  }
}

TEST(CayleyGraph, RingMatchesDefinition) {
  const CayleyGraph cg = cayley_ring(7);
  EXPECT_EQ(cg.graph.node_count(), 7u);
  EXPECT_EQ(cg.graph.edge_count(), 7u);
  EXPECT_TRUE(cg.graph.is_regular());
  EXPECT_TRUE(cg.graph.is_connected());
  // Port i of node a leads to a * s_i.
  for (graph::NodeId a = 0; a < 7; ++a) {
    for (graph::PortId i = 0; i < cg.gens.size(); ++i) {
      EXPECT_EQ(cg.graph.peer(a, i).to,
                cg.gamma.op(a, cg.gens.elements()[i]));
    }
  }
}

TEST(CayleyGraph, HypercubeMatchesFamily) {
  const CayleyGraph cg = cayley_hypercube(3);
  EXPECT_EQ(cg.graph.node_count(), 8u);
  EXPECT_EQ(cg.graph.edge_count(), 12u);
  for (graph::NodeId a = 0; a < 8; ++a) {
    for (graph::PortId i = 0; i < 3; ++i) {
      EXPECT_EQ(cg.graph.peer(a, i).to, a ^ cg.gens.elements()[i]);
    }
  }
}

TEST(CayleyGraph, CompleteAndTorusAndDihedral) {
  EXPECT_EQ(cayley_complete(5).graph.edge_count(), 10u);
  const CayleyGraph t = cayley_torus(3, 4);
  EXPECT_EQ(t.graph.node_count(), 12u);
  EXPECT_EQ(t.graph.degree(0), 4u);
  const CayleyGraph d = cayley_dihedral(4);
  EXPECT_EQ(d.graph.node_count(), 8u);
  EXPECT_EQ(d.graph.degree(0), 3u);  // r, r^-1, f
  EXPECT_TRUE(d.graph.is_connected());
}

TEST(CayleyGraph, TranslationsPreserveNaturalLabeling) {
  // The crux of Theorem 4.1's proof: left translations preserve the
  // right-generator labeling.
  const CayleyGraph cg = cayley_torus(3, 3);
  const auto l = cg.natural_labeling();
  for (Elem gmm = 0; gmm < cg.gamma.size(); ++gmm) {
    const auto phi = cg.translation(gmm);
    for (graph::NodeId x = 0; x < cg.graph.node_count(); ++x) {
      for (graph::PortId p = 0; p < cg.graph.degree(x); ++p) {
        const graph::HalfEdge& h = cg.graph.peer(x, p);
        // The edge (x, p) maps to an edge at phi(x) with the same label:
        // find the port of phi(x) leading to phi(h.to) and compare labels.
        bool found = false;
        for (graph::PortId q = 0; q < cg.graph.degree(phi[x]); ++q) {
          if (cg.graph.peer(phi[x], q).to == phi[h.to] &&
              l.at(phi[x], q) == l.at(x, p)) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found);
      }
    }
  }
}

TEST(CayleyGraph, TranslationsAreSharplyTransitive) {
  const CayleyGraph cg = cayley_ring(6);
  const auto all = cg.all_translations();
  EXPECT_EQ(all.size(), 6u);
  // Exactly one translation maps 0 to each v.
  for (graph::NodeId v = 0; v < 6; ++v) {
    std::size_t count = 0;
    for (const auto& phi : all) {
      if (phi[0] == v) ++count;
    }
    EXPECT_EQ(count, 1u);
  }
}

}  // namespace
}  // namespace qelect::group
