// Store crash-injection suite: the WAL's recovery contract checked the
// hard way.  Every test drives StoreWriter/load_store directly with
// synthetic records (no simulator in the loop), so the truncation sweep
// can afford to chop the file at EVERY byte offset and resume from each
// wreck, and the byte-flip sweep can corrupt every byte and watch the CRC
// reject it.  The invariant under test throughout: recovery yields an
// exact logical prefix of what was committed -- never a garbled record,
// never a record from beyond the first broken frame -- and the JSONL
// export of the recovered+resumed store is byte-identical to an
// uninterrupted run's.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "qelect/campaign/json.hpp"
#include "qelect/campaign/store.hpp"
#include "qelect/util/assert.hpp"

namespace qelect::campaign {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  fs::path dir;
  explicit ScratchDir(const std::string& name)
      : dir(fs::temp_directory_path() /
            ("qelect_store_test_" + name + std::to_string(::getpid()))) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~ScratchDir() { fs::remove_all(dir); }
  std::string path(const std::string& file) const {
    return (dir / file).string();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

StoreHeader test_header() {
  StoreHeader h;
  h.name = "store-suite";
  h.spec_hash = 0x00c0ffee12345678ull;
  h.spec_json = R"({"name":"store-suite","workload":"elect"})";
  return h;
}

/// Synthetic record `i`: varied outcomes, metrics, and error text so the
/// encoder exercises every field (including embedded quotes).
TaskRecord test_record(std::uint64_t i) {
  TaskRecord r;
  r.task_index = i;
  r.key = "elect/synthetic(" + std::to_string(i) + ")/p=0/s=1";
  r.attempts = static_cast<int>(i % 3) + 1;
  r.duration_seconds = 0;
  if (i % 5 == 4) {
    r.outcome = "failed";
    r.error = "injected \"quoted\" failure #" + std::to_string(i);
  } else {
    r.outcome = "ok";
    r.metrics.emplace_back("n", static_cast<double>(i));
    r.metrics.emplace_back("moves", static_cast<double>(i * 7 + 1));
    r.metrics.emplace_back("clean_election", i % 2 ? 1.0 : 0.0);
  }
  return r;
}

std::vector<TaskRecord> test_records(std::size_t n) {
  std::vector<TaskRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(test_record(i));
  return out;
}

/// Writes a fresh WAL store holding records 0..n-1, committed durably.
void write_store(const std::string& path, std::size_t n) {
  StoreWriter writer(path, test_header());
  for (const TaskRecord& r : test_records(n)) writer.append(r);
  writer.commit();
}

/// The export a store holding the first `k` synthetic records produces.
std::string expected_export(std::size_t k) {
  std::string out = header_to_json(test_header());
  out.push_back('\n');
  for (std::size_t i = 0; i < k; ++i) {
    out += test_record(i).to_json();
    out.push_back('\n');
  }
  return out;
}

TEST(WalStore, RoundTripsRecordsAndHeader) {
  ScratchDir scratch("roundtrip");
  const std::string path = scratch.path("s.qws");
  write_store(path, 25);
  const LoadedStore store = load_store(path);
  EXPECT_TRUE(store.exists);
  EXPECT_TRUE(store.has_header);
  EXPECT_EQ(store.format, LoadedStore::Format::Wal);
  EXPECT_FALSE(store.torn_tail);
  EXPECT_EQ(store.generation, 1u);
  EXPECT_EQ(store.header.name, "store-suite");
  EXPECT_EQ(store.header.spec_hash, test_header().spec_hash);
  EXPECT_EQ(store.header.spec_json, test_header().spec_json);
  ASSERT_EQ(store.records.size(), 25u);
  EXPECT_EQ(store.low_water, 25u);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(store.records[i].to_json(), test_record(i).to_json());
    EXPECT_EQ(store.records[i].task_index, i);
  }
  EXPECT_EQ(store_to_jsonl(store), expected_export(25));
}

// The tentpole crash test: truncate the WAL at EVERY byte offset, load,
// and check the recovery is an exact logical prefix; then resume (reopen
// a writer, append what's missing, commit) and check the export equals an
// uninterrupted run's, byte for byte.
TEST(WalStore, TruncationSweepRecoversExactLogicalPrefix) {
  ScratchDir scratch("truncsweep");
  const std::string path = scratch.path("s.qws");
  constexpr std::size_t kRecords = 12;
  write_store(path, kRecords);
  const std::string full = slurp(path);
  const std::string full_export = expected_export(kRecords);

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    spit(path, full.substr(0, cut));
    const LoadedStore store = load_store(path);
    EXPECT_TRUE(store.exists);
    EXPECT_EQ(store.torn_tail, cut != full.size() && store.valid_bytes != cut)
        << "cut=" << cut;
    EXPECT_LE(store.valid_bytes, cut) << "cut=" << cut;
    const std::size_t k = store.records.size();
    ASSERT_LE(k, kRecords) << "cut=" << cut;
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(store.records[i].to_json(), test_record(i).to_json())
          << "cut=" << cut << " record=" << i;
    }
    EXPECT_EQ(store.low_water, k) << "cut=" << cut;

    // Resume over the wreck: the writer truncates the torn tail and the
    // missing suffix is re-appended.
    {
      StoreWriter writer(path, test_header());
      ASSERT_EQ(writer.record_count(), k) << "cut=" << cut;
      for (std::size_t i = k; i < kRecords; ++i) {
        writer.append(test_record(i));
      }
      writer.commit();
    }
    EXPECT_EQ(store_to_jsonl(load_store(path)), full_export)
        << "cut=" << cut;
  }
}

// Same sweep over the legacy JSONL format: the export path must recover
// the identical logical prefix (complete lines) at every kill point.
TEST(WalStore, JsonlTruncationSweepRecoversExactLogicalPrefix) {
  ScratchDir scratch("jsonlsweep");
  const std::string path = scratch.path("s.jsonl");
  constexpr std::size_t kRecords = 8;
  const std::string full = expected_export(kRecords);

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    spit(path, full.substr(0, cut));
    const LoadedStore store = load_store(path);
    if (cut > 0) {
      EXPECT_EQ(store.format, LoadedStore::Format::Jsonl);
    }
    const std::size_t k = store.records.size();
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(store.records[i].to_json(), test_record(i).to_json())
          << "cut=" << cut << " record=" << i;
      ASSERT_EQ(store.records[i].task_index, i) << "cut=" << cut;
    }
    if (!store.has_header) {
      EXPECT_EQ(k, 0u) << "cut=" << cut;
      continue;
    }
    // Resume: the writer migrates the wreck to WAL, dropping the torn
    // line; refilling the suffix must reproduce the full export.
    {
      StoreWriter writer(path, test_header());
      for (std::size_t i = k; i < kRecords; ++i) {
        writer.append(test_record(i));
      }
      writer.commit();
    }
    EXPECT_EQ(store_to_jsonl(load_store(path)), full) << "cut=" << cut;
  }
}

// Flip every byte of the WAL in turn: the CRC (or the magic/header check)
// must reject the damage.  Recovery may shorten the store -- the flipped
// frame and everything after it is gone -- but every surviving record must
// be exact, and a complete-but-corrupt interior is never silently used.
TEST(WalStore, ByteFlipSweepNeverYieldsAGarbledRecord) {
  ScratchDir scratch("flipsweep");
  const std::string path = scratch.path("s.qws");
  constexpr std::size_t kRecords = 10;
  write_store(path, kRecords);
  const std::string full = slurp(path);

  for (std::size_t at = 0; at < full.size(); ++at) {
    std::string damaged = full;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x41);
    spit(path, damaged);
    try {
      const LoadedStore store = load_store(path);
      ASSERT_LE(store.records.size(), kRecords) << "at=" << at;
      for (std::size_t i = 0; i < store.records.size(); ++i) {
        ASSERT_EQ(store.records[i].to_json(), test_record(i).to_json())
            << "at=" << at << " record=" << i;
      }
    } catch (const CheckError&) {
      // Damage to the magic or the generation header is fatal rather than
      // recoverable; that is allowed, silence is not.
    }
  }
}

TEST(WalStore, CompactionMovesRecordsToSnapshotAndTrimsTheLog) {
  ScratchDir scratch("compact");
  const std::string path = scratch.path("s.qws");
  {
    StoreWriter writer(path, test_header());
    for (std::size_t i = 0; i < 20; ++i) writer.append(test_record(i));
    writer.commit();
    const std::size_t before = slurp(path).size();
    writer.compact();
    EXPECT_EQ(writer.generation(), 2u);
    // The rewritten log holds only the magic + generation header: loading
    // now replays a 20-record snapshot plus an (empty) tail -- no rescan
    // of the original frames.
    EXPECT_LT(slurp(path).size(), before / 4);
    for (std::size_t i = 20; i < 30; ++i) writer.append(test_record(i));
    writer.commit();
  }
  const LoadedStore store = load_store(path);
  EXPECT_EQ(store.generation, 2u);
  EXPECT_EQ(store.snapshot_records, 20u);
  EXPECT_FALSE(store.pending_compaction);
  ASSERT_EQ(store.records.size(), 30u);
  EXPECT_EQ(store.low_water, 30u);
  EXPECT_EQ(store_to_jsonl(store), expected_export(30));
}

TEST(WalStore, InterruptedCompactionHealsOnReopen) {
  ScratchDir scratch("healing");
  const std::string path = scratch.path("s.qws");
  write_store(path, 15);
  // Stage the crash window: the snapshot (generation 2) landed, the log
  // rewrite did not -- exactly what a kill between compact()'s two
  // durable steps leaves behind.
  write_snapshot_file(path + ".snap", test_header(), 2, test_records(15));

  const LoadedStore before = load_store(path);
  EXPECT_TRUE(before.pending_compaction);
  EXPECT_EQ(before.generation, 1u);
  ASSERT_EQ(before.records.size(), 15u);
  EXPECT_EQ(store_to_jsonl(before), expected_export(15));

  {
    StoreWriter writer(path, test_header());  // reopen completes the job
    EXPECT_EQ(writer.generation(), 2u);
  }
  const LoadedStore after = load_store(path);
  EXPECT_FALSE(after.pending_compaction);
  EXPECT_EQ(after.generation, 2u);
  EXPECT_EQ(after.snapshot_records, 15u);
  EXPECT_EQ(store_to_jsonl(after), expected_export(15));
}

TEST(WalStore, CompactedLogWithoutItsSnapshotIsFatal) {
  ScratchDir scratch("nosnap");
  const std::string path = scratch.path("s.qws");
  {
    StoreWriter writer(path, test_header());
    for (std::size_t i = 0; i < 10; ++i) writer.append(test_record(i));
    writer.commit();
    writer.compact();
  }
  // Missing snapshot: the log alone cannot reconstruct the records.
  fs::remove(path + ".snap");
  EXPECT_THROW(load_store(path), CheckError);

  // Corrupt snapshot: same verdict (never silently drop 10 records).
  write_snapshot_file(path + ".snap", test_header(), 2, test_records(10));
  std::string snap = slurp(path + ".snap");
  snap[snap.size() / 2] = static_cast<char>(snap[snap.size() / 2] ^ 0x41);
  spit(path + ".snap", snap);
  EXPECT_THROW(load_store(path), CheckError);
}

TEST(WalStore, StaleSnapshotNextToAnUncompactedLogIsIgnored) {
  ScratchDir scratch("stalesnap");
  const std::string path = scratch.path("s.qws");
  write_store(path, 5);
  // A snapshot from some older world (generation 0 < log generation 1):
  // the log owes it nothing (base_records == 0), so it is ignored.
  write_snapshot_file(path + ".snap", test_header(), 0, test_records(3));
  const LoadedStore store = load_store(path);
  EXPECT_EQ(store.snapshot_records, 0u);
  ASSERT_EQ(store.records.size(), 5u);
  EXPECT_EQ(store_to_jsonl(store), expected_export(5));
}

TEST(WalStore, AutoCompactionTriggersDuringCommits) {
  ScratchDir scratch("autocompact");
  const std::string path = scratch.path("s.qws");
  StoreOptions options;
  options.compact_every = 16;
  {
    StoreWriter writer(path, test_header(), options);
    for (std::size_t i = 0; i < 100; ++i) {
      writer.append(test_record(i));
      writer.commit();
    }
    EXPECT_GT(writer.generation(), 1u);
  }
  const LoadedStore store = load_store(path);
  EXPECT_GT(store.snapshot_records, 0u);
  ASSERT_EQ(store.records.size(), 100u);
  EXPECT_EQ(store_to_jsonl(store), expected_export(100));
}

TEST(WalStore, LegacyJsonlStoreMigratesInPlaceAndExportsIdentically) {
  ScratchDir scratch("migrate");
  const std::string path = scratch.path("s.jsonl");
  const std::string legacy_text = expected_export(9);
  spit(path, legacy_text);

  const LoadedStore before = load_store(path);
  EXPECT_EQ(before.format, LoadedStore::Format::Jsonl);
  ASSERT_EQ(before.records.size(), 9u);
  EXPECT_EQ(store_to_jsonl(before), legacy_text);

  {
    StoreWriter writer(path, test_header());
    EXPECT_EQ(writer.record_count(), 9u);
    writer.append(test_record(9));
    writer.commit();
  }
  const LoadedStore after = load_store(path);
  EXPECT_EQ(after.format, LoadedStore::Format::Wal);
  ASSERT_EQ(after.records.size(), 10u);
  EXPECT_EQ(store_to_jsonl(after), expected_export(10));
}

// Regression for the strtoull bug: a malformed spec_hash used to parse as
// 0 and surface later as a bogus "different campaign spec" mismatch.
TEST(WalStore, MalformedLegacySpecHashIsRejectedUpFront) {
  ScratchDir scratch("badhash");
  const std::string path = scratch.path("s.jsonl");
  for (const std::string bad : {"\"not-hex\"", "\"12345678901234567\"",
                                "\"\"", "\"12g4\""}) {
    spit(path,
         "{\"type\":\"campaign\",\"name\":\"x\",\"spec_hash\":" + bad +
             ",\"spec\":null}\n");
    EXPECT_THROW(load_store(path), CheckError) << bad;
  }
  // Upper-case hex is valid.
  spit(path,
       "{\"type\":\"campaign\",\"name\":\"x\",\"spec_hash\":\"00C0FFEE\","
       "\"spec\":null}\n");
  EXPECT_EQ(load_store(path).header.spec_hash, 0xc0ffeeu);
}

// Regression for the raw find("\"spec\":") bug: the spec must be located
// structurally, so lookalike bytes inside other members' strings and
// non-canonical member order cannot corrupt the recovered spec.
TEST(WalStore, LegacySpecExtractionIsStructureAware) {
  ScratchDir scratch("specspan");
  const std::string path = scratch.path("s.jsonl");
  const std::string spec = R"({"name":"evil","workload":"elect"})";
  // The name's escaped quotes decode to the bytes "spec": -- a raw
  // substring search would lock onto them and mis-slice the line.
  spit(path,
       "{\"type\":\"campaign\",\"name\":\"evil \\\"spec\\\": here\","
       "\"spec_hash\":\"ff\",\"spec\":" + spec + "}\n");
  EXPECT_EQ(load_store(path).header.spec_json, spec);

  // Valid JSON, non-canonical member order: spec first.
  spit(path,
       "{\"spec\":" + spec +
           ",\"type\":\"campaign\",\"name\":\"x\",\"spec_hash\":\"ff\"}\n");
  EXPECT_EQ(load_store(path).header.spec_json, spec);
}

TEST(JsonMemberSpan, FindsValuesAndRejectsNonObjects) {
  // "a"'s string value carries brace, bracket, and "b": lookalikes that a
  // byte-level search would trip over.
  const std::string text =
      R"({"a":"{\"b\":[1,","b":[1,{"c":2}],"d":{"e":"}"},"f":3.5})";
  std::size_t b = 0, e = 0;
  ASSERT_TRUE(json_member_span(text, "b", &b, &e));
  EXPECT_EQ(text.substr(b, e - b), R"([1,{"c":2}])");
  ASSERT_TRUE(json_member_span(text, "d", &b, &e));
  EXPECT_EQ(text.substr(b, e - b), R"({"e":"}"})");
  ASSERT_TRUE(json_member_span(text, "f", &b, &e));
  EXPECT_EQ(text.substr(b, e - b), "3.5");
  EXPECT_FALSE(json_member_span(text, "c", &b, &e));  // nested, not top-level
  EXPECT_FALSE(json_member_span("{}", "a", &b, &e));
  EXPECT_THROW(json_member_span("[1,2]", "a", &b, &e), CheckError);
}

TEST(WalStore, ExportOrdersByTaskIndexNotCommitOrder) {
  ScratchDir scratch("ooo");
  const std::string path = scratch.path("s.qws");
  {
    StoreWriter writer(path, test_header());
    for (const std::uint64_t i : {3u, 0u, 2u, 1u}) {
      writer.append(test_record(i));
    }
    writer.commit();
  }
  const LoadedStore store = load_store(path);
  EXPECT_EQ(store.low_water, 4u);
  EXPECT_EQ(store_to_jsonl(store), expected_export(4));
  // Commit order is preserved in the loaded records themselves.
  EXPECT_EQ(store.records[0].task_index, 3u);
}

TEST(WalStore, LowWaterStopsAtTheFirstGap) {
  ScratchDir scratch("lowwater");
  const std::string path = scratch.path("s.qws");
  {
    StoreWriter writer(path, test_header());
    for (const std::uint64_t i : {0u, 1u, 2u, 5u, 6u}) {
      writer.append(test_record(i));
    }
    writer.commit();
  }
  EXPECT_EQ(load_store(path).low_water, 3u);
}

// The group-commit path under real contention (this is the TSan target):
// concurrent appenders + committers must never lose a record, and every
// commit() must return only after its records are flushed.
TEST(WalStore, ConcurrentAppendAndGroupCommitLosesNothing) {
  ScratchDir scratch("threads");
  const std::string path = scratch.path("s.qws");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 200;
  {
    StoreWriter writer(path, test_header());
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          writer.append(test_record(t * kPerThread + i));
          if (i % 17 == 0) writer.commit();
        }
        writer.commit();
      });
    }
    for (std::thread& th : pool) th.join();
    EXPECT_EQ(writer.record_count(), kThreads * kPerThread);
  }
  const LoadedStore store = load_store(path);
  ASSERT_EQ(store.records.size(), kThreads * kPerThread);
  EXPECT_EQ(store.low_water, kThreads * kPerThread);
  EXPECT_EQ(store_to_jsonl(store),
            expected_export(kThreads * kPerThread));
}

TEST(WalStore, WriterRefusesAForeignSpecHash) {
  ScratchDir scratch("foreign");
  const std::string path = scratch.path("s.qws");
  write_store(path, 3);
  StoreHeader other = test_header();
  other.spec_hash ^= 1;
  EXPECT_THROW(StoreWriter(path, other), CheckError);
}

}  // namespace
}  // namespace qelect::campaign
