// Tests for views and symmetricity, anchored on the paper's Figure 2
// examples and Yamashita-Kameda facts.
#include <gtest/gtest.h>

#include "qelect/graph/families.hpp"
#include "qelect/group/cayley_graph.hpp"
#include "qelect/views/symmetricity.hpp"
#include "qelect/views/views.hpp"

namespace qelect::views {
namespace {

using graph::EdgeLabeling;
using graph::Placement;

TEST(Views, Fig2aQuantitativeViewsAllDiffer) {
  // Figure 2(a): with the integer labeling 1,1 / 2,1 all three views
  // differ, so a quantitative agent can order them and elect.
  const auto ex = graph::figure2_path();
  const Placement p = Placement::empty(3);
  const auto vx = encode_view(build_view(ex.graph, p, ex.quantitative, 0, 3));
  const auto vy = encode_view(build_view(ex.graph, p, ex.quantitative, 1, 3));
  const auto vz = encode_view(build_view(ex.graph, p, ex.quantitative, 2, 3));
  EXPECT_NE(vx, vy);
  EXPECT_NE(vy, vz);
  EXPECT_NE(vx, vz);
}

TEST(Views, Fig2bQualitativeEndsBecomeIndistinguishable) {
  // Figure 2(b): with symbols *, o, bullet the *exact* views of x and z
  // still differ, but up to symbol renaming they coincide -- the paper's
  // "election cannot be performed by just sorting the views".
  const auto ex = graph::figure2_path();
  const Placement p = Placement::empty(3);
  const auto vx = build_view(ex.graph, p, ex.qualitative, 0, 3);
  const auto vz = build_view(ex.graph, p, ex.qualitative, 2, 3);
  EXPECT_NE(encode_view(vx), encode_view(vz));
  EXPECT_EQ(encode_view_qualitative(vx), encode_view_qualitative(vz));
  // y remains distinguishable even qualitatively (it has degree 2).
  const auto vy = build_view(ex.graph, p, ex.qualitative, 1, 3);
  EXPECT_NE(encode_view_qualitative(vy), encode_view_qualitative(vx));
}

TEST(Views, Fig2bWalkCodingCollides) {
  // The walk device: agent from x sees *, o, bullet, * => 1,2,3,1; agent
  // from z sees *, bullet, o, * => also 1,2,3,1.
  const std::vector<std::uint32_t> from_x{10, 11, 12, 10};
  const std::vector<std::uint32_t> from_z{10, 12, 11, 10};
  EXPECT_NE(from_x, from_z);
  EXPECT_EQ(first_seen_code(from_x), first_seen_code(from_z));
  EXPECT_EQ(first_seen_code(from_x),
            (std::vector<std::uint32_t>{1, 2, 3, 1}));
}

TEST(Views, Fig2cAllNodesShareOneView) {
  // Figure 2(c): the 3-node multigraph where all views coincide although
  // the ~lab classes are singletons (the converse of Equation 1 fails).
  const auto ex = graph::figure2c();
  const Placement p = Placement::empty(3);
  const auto classes = view_classes(ex.graph, p, ex.labeling);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].size(), 3u);
  const auto lab = label_class_sizes(ex.graph, p, ex.labeling);
  EXPECT_EQ(lab, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(Views, ExplicitTreeMatchesRefinementOnPaths) {
  // Depth-(n-1) explicit views and the refinement fixed point must induce
  // the same partition (Norris).
  const graph::Graph g = graph::path(6);
  const Placement p = Placement::empty(6);
  const EdgeLabeling l = EdgeLabeling::from_ports(g);
  const auto classes = view_classes(g, p, l);
  // Explicit check: same class <=> equal encoded depth-(n-1) views.
  for (graph::NodeId a = 0; a < 6; ++a) {
    for (graph::NodeId b = 0; b < 6; ++b) {
      const bool same_class = [&] {
        for (const auto& c : classes) {
          const bool ina = std::find(c.begin(), c.end(), a) != c.end();
          const bool inb = std::find(c.begin(), c.end(), b) != c.end();
          if (ina || inb) return ina && inb;
        }
        return false;
      }();
      const bool same_view =
          encode_view(build_view(g, p, l, a, 5)) ==
          encode_view(build_view(g, p, l, b, 5));
      EXPECT_EQ(same_class, same_view) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Symmetricity, UniformRingLabelingIsFullySymmetric) {
  // The clockwise/counterclockwise labeling of C_n has sigma = n.
  const group::CayleyGraph cg = group::cayley_ring(6);
  const auto l = cg.natural_labeling();
  EXPECT_EQ(symmetricity_of_labeling(cg.graph, Placement::empty(6), l), 6u);
}

TEST(Symmetricity, PortsLabelingOfPathIsAsymmetric) {
  const graph::Graph g = graph::path(4);
  const EdgeLabeling l = EdgeLabeling::from_ports(g);
  // Port labeling of a path: end nodes both have the label-0 edge, but the
  // interior structure separates everything at fixed point... compute and
  // sanity-check the YK equal-size invariant holds.
  const std::size_t sigma =
      symmetricity_of_labeling(g, Placement::empty(4), l);
  EXPECT_GE(sigma, 1u);
  EXPECT_EQ(4 % sigma, 0u);
}

TEST(Symmetricity, K2HasSigma2) {
  // K_2: both labelings (same symbol both sides or not) keep the two nodes
  // symmetric when the symbols agree; max symmetricity is 2.
  const graph::Graph k2 = graph::complete(2);
  EXPECT_EQ(max_symmetricity_exhaustive(k2, Placement::empty(2), 2), 2u);
}

TEST(Symmetricity, PathMaxSymmetricityIsNontrivial) {
  // P_2 with both agents black: the symmetric labeling keeps sigma = 2,
  // proving election impossible on (K_2, both agents) -- the paper's basic
  // counterexample.
  const graph::Graph k2 = graph::complete(2);
  const Placement p(2, {0, 1});
  EXPECT_EQ(max_symmetricity_exhaustive(k2, p, 2), 2u);
  EXPECT_TRUE(exists_labeling_with_all_classes_nontrivial(k2, p, 2));
}

TEST(Symmetricity, StarIsAlwaysAsymmetric) {
  // A star with the agent at the center: no labeling hides the center.
  const graph::Graph g = graph::star(3);
  const Placement p(4, {0});
  EXPECT_FALSE(exists_labeling_with_all_classes_nontrivial(g, p, 3));
}

TEST(Symmetricity, RingWithTwoAntipodalAgentsIsObstructed) {
  // (C_4, {0, 2}): the natural labeling leaves a fixed-point-free
  // label-preserving automorphism; Theorem 2.1 applies.
  const graph::Graph g = graph::ring(4);
  const Placement p(4, {0, 2});
  EXPECT_TRUE(exists_labeling_with_all_classes_nontrivial(g, p, 2));
}

TEST(Symmetricity, RingWithAdjacentAgentsIsObstructed) {
  // The documented Theorem 4.1 gap instance (C_4, {0, 1}): obstructed even
  // though the Z_4 translation classes are singletons.
  const graph::Graph g = graph::ring(4);
  const Placement p(4, {0, 1});
  EXPECT_TRUE(exists_labeling_with_all_classes_nontrivial(g, p, 2));
}

TEST(Symmetricity, LabelClassesRefineViewClasses) {
  // x ~lab y => x ~view y (Equation 1) on a spread of labelings.
  const graph::Graph g = graph::ring(6);
  const Placement p(6, {0, 2});
  int checked = 0;
  for (const auto& l : graph::enumerate_labelings(g, 2)) {
    const auto lab_classes = label_equivalence_classes(g, p, l);
    const auto coloring = view_coloring(g, p, l);
    for (const auto& cls : lab_classes) {
      for (graph::NodeId x : cls) {
        EXPECT_EQ(coloring[x], coloring[cls.front()]);
      }
    }
    if (++checked >= 32) break;  // spread, not exhaustive: runtime bound
  }
  EXPECT_GE(checked, 32);
}

TEST(YkLeader, ExistsExactlyWhenSigmaIsOne) {
  const graph::Graph g = graph::ring(4);
  const Placement p(4, {0});
  for (const auto& l : graph::enumerate_labelings(g, 2)) {
    const auto leader = yk_quantitative_leader(g, p, l);
    const std::size_t sigma = symmetricity_of_labeling(g, p, l);
    EXPECT_EQ(leader.has_value(), sigma == 1);
  }
}

TEST(YkLeader, InvariantUnderRelabeling) {
  // The elected node must follow any isomorphism: every processor computes
  // the same leader regardless of the hidden node numbering.
  const graph::Graph g = graph::path(5);
  const Placement p(5, {1});
  const auto l = graph::EdgeLabeling::from_ports(g);
  const auto leader = yk_quantitative_leader(g, p, l);
  ASSERT_TRUE(leader.has_value());
  // Apply a node relabeling; the labeling must be transported too.  For a
  // path with port labeling, reversing the node order transports ports to
  // the mirrored node; rebuild from scratch instead: the mirrored path has
  // the same structure, so the leader's *view* must be the mirror image.
  const std::vector<graph::NodeId> sigma{4, 3, 2, 1, 0};
  const graph::Graph h = g.relabel_nodes(sigma);
  graph::EdgeLabeling lh = graph::EdgeLabeling::zeros(h);
  for (graph::NodeId x = 0; x < 5; ++x) {
    for (graph::PortId q = 0; q < g.degree(x); ++q) {
      lh.set(sigma[x], q, l.at(x, q));
    }
  }
  const auto leader_h = yk_quantitative_leader(h, p.relabel(sigma), lh);
  ASSERT_TRUE(leader_h.has_value());
  EXPECT_EQ(*leader_h, sigma[*leader]);
}

TEST(YkLeader, SymmetricRingHasNoLeader) {
  const auto cg = group::cayley_ring(6);
  EXPECT_FALSE(yk_quantitative_leader(cg.graph, Placement::empty(6),
                                      cg.natural_labeling())
                   .has_value());
}

}  // namespace
}  // namespace qelect::views
