// Golden gate for the batch backend: a replica configured (seed, replica)
// must produce a RunResult identical field-for-field to the scalar World
// run with the same RunConfig, across every scheduler policy the batch
// engine supports.  This is the contract campaign slabs and serve bursts
// rely on when they substitute batch execution for scalar runs.
#include <gtest/gtest.h>

#include <vector>

#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/core/elect_batch.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/batch.hpp"
#include "qelect/sim/scheduler.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/util/rng.hpp"

namespace qelect::core {
namespace {

using graph::Placement;
using sim::BatchConfig;
using sim::BatchReplicaConfig;
using sim::RunConfig;
using sim::RunResult;
using sim::SchedulerPolicy;
using sim::World;

struct Instance {
  std::string name;
  graph::Graph g;
  Placement p;
};

std::vector<Instance> parity_instances() {
  std::vector<Instance> out;
  out.push_back({"ring5-single", graph::ring(5), Placement(5, {2})});
  out.push_back({"ring5-two-black-classes", graph::ring(5),
                 Placement(5, {0, 1, 3})});
  out.push_back({"ring6-gcd1", graph::ring(6), Placement(6, {0, 2})});
  out.push_back({"ring6-antipodal", graph::ring(6), Placement(6, {0, 3})});
  out.push_back({"cube-mixed", graph::hypercube(3), Placement(8, {0, 3, 5})});
  out.push_back({"torus33-pair", graph::torus({3, 3}), Placement(9, {0, 4})});
  out.push_back({"star-center-leaf", graph::star(4), Placement(5, {0, 1})});
  out.push_back({"petersen-adjacent", graph::petersen(),
                 Placement(10, {0, 5})});
  return out;
}

RunResult scalar_run(const Instance& inst, SchedulerPolicy policy,
                     std::uint64_t seed, std::uint64_t replica) {
  // The batch replica seed plays both the color_seed and scheduler seed
  // roles, so the comparable scalar run reuses it for both.
  World w(inst.g, inst.p, /*color_seed=*/seed);
  RunConfig cfg;
  cfg.policy = policy;
  cfg.seed = seed;
  cfg.replica = replica;
  return w.run(make_elect_protocol(), cfg);
}

void expect_same_result(const RunResult& batch, const RunResult& scalar,
                        const std::string& label) {
  EXPECT_EQ(batch.completed, scalar.completed) << label;
  EXPECT_EQ(batch.deadlock, scalar.deadlock) << label;
  EXPECT_EQ(batch.step_limit, scalar.step_limit) << label;
  EXPECT_EQ(batch.steps, scalar.steps) << label;
  EXPECT_EQ(batch.total_moves, scalar.total_moves) << label;
  EXPECT_EQ(batch.total_board_accesses, scalar.total_board_accesses) << label;
  ASSERT_EQ(batch.agents.size(), scalar.agents.size()) << label;
  for (std::size_t i = 0; i < batch.agents.size(); ++i) {
    EXPECT_EQ(batch.agents[i], scalar.agents[i])
        << label << " agent " << i;
  }
}

TEST(Batch, MatchesScalarAcrossPoliciesInstancesAndSeeds) {
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 41};
  for (const Instance& inst : parity_instances()) {
    const auto plan = compile_elect_batch_plan(inst.g, inst.p);
    for (const SchedulerPolicy policy :
         {SchedulerPolicy::Random, SchedulerPolicy::RoundRobin,
          SchedulerPolicy::Lockstep, SchedulerPolicy::Counter}) {
      // All seeds as one batch: exercises the slab path, not just N=1.
      std::vector<BatchReplicaConfig> replicas;
      for (const std::uint64_t seed : seeds) replicas.push_back({seed, 0});
      BatchConfig cfg;
      cfg.policy = policy;
      const ElectBatchOutcome out = run_elect_batch(plan, replicas, cfg);
      ASSERT_EQ(out.runs.size(), seeds.size());
      for (std::size_t rep = 0; rep < seeds.size(); ++rep) {
        ASSERT_FALSE(out.failed[rep]) << inst.name << " " << out.errors[rep];
        const RunResult scalar = scalar_run(inst, policy, seeds[rep], 0);
        expect_same_result(out.runs[rep], scalar,
                           inst.name + "/" + sim::policy_name(policy) +
                               "/seed" + std::to_string(seeds[rep]));
      }
    }
  }
}

TEST(Batch, CounterReplicaStreamsMatchScalarPerReplica) {
  // One seed, many replica ids: the serve burst shape.  Every replica must
  // reproduce the scalar run keyed (seed, replica) bit-for-bit, and the
  // streams must actually differ from one another.
  const Instance inst = {"ring5-two-black-classes", graph::ring(5),
                         Placement(5, {0, 1, 3})};
  const auto plan = compile_elect_batch_plan(inst.g, inst.p);
  const std::uint64_t seed = 7;
  constexpr std::size_t kReplicas = 8;
  std::vector<BatchReplicaConfig> replicas;
  for (std::size_t i = 0; i < kReplicas; ++i) replicas.push_back({seed, i});
  BatchConfig cfg;
  cfg.policy = SchedulerPolicy::Counter;
  const ElectBatchOutcome out = run_elect_batch(plan, replicas, cfg);
  bool any_stream_differs = false;
  for (std::size_t i = 0; i < kReplicas; ++i) {
    ASSERT_FALSE(out.failed[i]) << out.errors[i];
    const RunResult scalar =
        scalar_run(inst, SchedulerPolicy::Counter, seed, i);
    expect_same_result(out.runs[i], scalar, "replica " + std::to_string(i));
    if (i > 0 && out.runs[i].steps != out.runs[0].steps) {
      any_stream_differs = true;
    }
  }
  EXPECT_TRUE(any_stream_differs)
      << "all " << kReplicas << " replica streams produced identical step "
      << "counts; Philox stream keying is suspect";
}

TEST(Batch, SmallStrideDoesNotChangeResults) {
  // Replicas are independent; the rotation stride shapes cache locality
  // only.  stride=1 forces maximal interleaving of replica execution.
  const Instance inst = {"cube-mixed", graph::hypercube(3),
                        Placement(8, {0, 3, 5})};
  const auto plan = compile_elect_batch_plan(inst.g, inst.p);
  std::vector<BatchReplicaConfig> replicas = {{1, 0}, {2, 0}, {3, 0}};
  BatchConfig wide;
  wide.policy = SchedulerPolicy::Random;
  BatchConfig narrow = wide;
  narrow.stride = 1;
  const ElectBatchOutcome a = run_elect_batch(plan, replicas, wide);
  const ElectBatchOutcome b = run_elect_batch(plan, replicas, narrow);
  for (std::size_t rep = 0; rep < replicas.size(); ++rep) {
    ASSERT_FALSE(a.failed[rep]);
    ASSERT_FALSE(b.failed[rep]);
    expect_same_result(a.runs[rep], b.runs[rep],
                       "stride parity rep " + std::to_string(rep));
  }
}

TEST(Batch, StepLimitMatchesScalar) {
  // Truncated runs must agree too (campaign tasks carry max_steps).
  const Instance inst = {"ring6-gcd1", graph::ring(6), Placement(6, {0, 2})};
  const auto plan = compile_elect_batch_plan(inst.g, inst.p);
  for (const std::size_t max_steps : {1ul, 17ul, 100ul, 1000ul}) {
    std::vector<BatchReplicaConfig> replicas = {{5, 0}};
    BatchConfig cfg;
    cfg.policy = SchedulerPolicy::Random;
    cfg.max_steps = max_steps;
    const ElectBatchOutcome out = run_elect_batch(plan, replicas, cfg);
    ASSERT_FALSE(out.failed[0]) << out.errors[0];

    World w(inst.g, inst.p, 5);
    RunConfig scfg;
    scfg.policy = SchedulerPolicy::Random;
    scfg.seed = 5;
    scfg.max_steps = max_steps;
    const RunResult scalar = w.run(make_elect_protocol(), scfg);
    expect_same_result(out.runs[0], scalar,
                       "max_steps=" + std::to_string(max_steps));
  }
}

TEST(Batch, PlanIsReusableAcrossRuns) {
  const Instance inst = {"ring5-two-black-classes", graph::ring(5),
                        Placement(5, {0, 1, 3})};
  const auto plan = compile_elect_batch_plan(inst.g, inst.p);
  BatchConfig cfg;
  cfg.policy = SchedulerPolicy::Counter;
  const ElectBatchOutcome first = run_elect_batch(plan, {{9, 0}}, cfg);
  const ElectBatchOutcome second = run_elect_batch(plan, {{9, 0}}, cfg);
  ASSERT_FALSE(first.failed[0]);
  ASSERT_FALSE(second.failed[0]);
  expect_same_result(first.runs[0], second.runs[0], "plan reuse");
}

TEST(Batch, CompiledPlanAgreesWithOracle) {
  for (const Instance& inst : parity_instances()) {
    const auto plan = compile_elect_batch_plan(inst.g, inst.p);
    const ProtocolClassPlan oracle = protocol_plan(inst.g, inst.p);
    EXPECT_EQ(plan->final_gcd, oracle.final_gcd) << inst.name;
    EXPECT_EQ(plan->agent_count, inst.p.agent_count()) << inst.name;
  }
}

TEST(Batch, CounterScheduleIsStatelesslyReconstructible) {
  // The Counter policy's defining property: pick i of a run keyed
  // (seed, replica) is enabled[bounded_draw(Philox(seed, replica).at(i),
  // |enabled|)] -- no stream replay needed.  Drive the real Scheduler
  // through a shifting enabled set and reconstruct every draw from
  // scratch.
  const std::uint64_t seed = 2026, replica = 5;
  RunConfig cfg;
  cfg.policy = SchedulerPolicy::Counter;
  cfg.seed = seed;
  cfg.replica = replica;
  sim::Scheduler sched(cfg, /*agent_count=*/6);
  std::vector<std::size_t> enabled = {0, 1, 2, 3, 4, 5};
  const Philox4x32 stream(seed, replica);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::size_t picked = sched.pick(enabled);
    const std::size_t reconstructed =
        enabled[bounded_draw(stream.at(i), enabled.size())];
    ASSERT_EQ(picked, reconstructed) << "draw " << i;
    // Shrink and regrow the enabled set so bounds vary across draws.
    if (enabled.size() > 2 && i % 3 == 0) {
      enabled.erase(enabled.begin() + static_cast<std::ptrdiff_t>(i % enabled.size()));
    } else if (enabled.size() < 6 && i % 5 == 0) {
      enabled.insert(enabled.begin(), 0);
      for (std::size_t k = 0; k < enabled.size(); ++k) enabled[k] = k;
    }
  }
}

TEST(Batch, RejectsReplayPolicy) {
  const Instance inst = {"ring5-single", graph::ring(5), Placement(5, {2})};
  const auto plan = compile_elect_batch_plan(inst.g, inst.p);
  BatchConfig cfg;
  cfg.policy = SchedulerPolicy::Replay;
  EXPECT_THROW(run_elect_batch(plan, {{1, 0}}, cfg), qelect::CheckError);
}

}  // namespace
}  // namespace qelect::core
