// Tests for MAP-DRAWING: the map must be isomorphic to the real network,
// carry the right home-base annotations, cost O(|E|) moves, and agree
// across agents and adversarial port numberings.
#include <gtest/gtest.h>

#include <memory>

#include "qelect/core/agent_map.hpp"
#include "qelect/core/analysis.hpp"
#include "qelect/core/map_drawing.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/iso/canonical.hpp"
#include "qelect/iso/colored_digraph.hpp"
#include "qelect/sim/world.hpp"

namespace qelect::core {
namespace {

using sim::AgentCtx;
using sim::Behavior;
using sim::RunConfig;
using sim::World;

/// Runs map_drawing for every agent and collects the maps.
std::vector<AgentMap> draw_maps(const graph::Graph& g,
                                const graph::Placement& p,
                                std::uint64_t seed = 17,
                                sim::RunResult* stats = nullptr) {
  World w(g, p, seed);
  auto maps = std::make_shared<std::vector<AgentMap>>();
  RunConfig cfg;
  cfg.seed = seed;
  const sim::RunResult r = w.run(
      [maps](AgentCtx& ctx) -> Behavior {
        AgentMap m = co_await map_drawing(ctx);
        maps->push_back(std::move(m));
        ctx.declare_failure_detected();  // irrelevant terminal state
      },
      cfg);
  EXPECT_TRUE(r.completed);
  if (stats) *stats = r;
  return std::move(*maps);
}

iso::Certificate bicolored_cert(const graph::Graph& g,
                                const graph::Placement& p) {
  return iso::canonical_certificate(iso::from_bicolored_graph(g, p));
}

TEST(MapDrawing, SingleAgentRingMapIsIsomorphic) {
  const graph::Graph g = graph::ring(7);
  const graph::Placement p(7, {3});
  const auto maps = draw_maps(g, p);
  ASSERT_EQ(maps.size(), 1u);
  const AgentMap& m = maps[0];
  EXPECT_EQ(m.graph.node_count(), 7u);
  EXPECT_EQ(m.graph.edge_count(), 7u);
  EXPECT_EQ(m.agent_count(), 1u);
  EXPECT_TRUE(m.base_color[0].has_value());  // map node 0 = own home-base
  EXPECT_EQ(bicolored_cert(m.graph, m.placement()), bicolored_cert(g, p));
}

TEST(MapDrawing, MultiAgentMapsAgree) {
  const graph::Graph g = graph::hypercube(3);
  const graph::Placement p(8, {0, 3, 5});
  const auto maps = draw_maps(g, p);
  ASSERT_EQ(maps.size(), 3u);
  const auto want = bicolored_cert(g, p);
  for (const AgentMap& m : maps) {
    EXPECT_EQ(m.graph.node_count(), 8u);
    EXPECT_EQ(m.agent_count(), 3u);
    EXPECT_EQ(bicolored_cert(m.graph, m.placement()), want);
  }
}

TEST(MapDrawing, ColorsMatchWorld) {
  const graph::Graph g = graph::ring(5);
  const graph::Placement p(5, {0, 2});
  World w(g, p, 29);
  const auto world_colors = w.agent_colors();
  auto maps = std::make_shared<std::vector<AgentMap>>();
  const auto r = w.run(
      [maps](AgentCtx& ctx) -> Behavior {
        maps->push_back(co_await map_drawing(ctx));
        ctx.declare_failure_detected();
      },
      RunConfig{});
  EXPECT_TRUE(r.completed);
  for (const AgentMap& m : *maps) {
    // Every world color appears exactly once among the base colors.
    for (const auto& c : world_colors) {
      std::size_t count = 0;
      for (const auto& bc : m.base_color) {
        if (bc.has_value() && *bc == c) ++count;
      }
      EXPECT_EQ(count, 1u);
    }
  }
}

TEST(MapDrawing, WorksOnMultigraphWithLoops) {
  const auto ex = graph::figure2c();
  const graph::Placement p(3, {0});
  const auto maps = draw_maps(ex.graph, p);
  ASSERT_EQ(maps.size(), 1u);
  EXPECT_EQ(maps[0].graph.node_count(), 3u);
  EXPECT_EQ(maps[0].graph.edge_count(), 6u);
  EXPECT_EQ(bicolored_cert(maps[0].graph, maps[0].placement()),
            bicolored_cert(ex.graph, p));
}

TEST(MapDrawing, MoveCostLinearInEdges) {
  const graph::Graph g = graph::torus({4, 4});
  const graph::Placement p(16, {0});
  sim::RunResult stats;
  draw_maps(g, p, 3, &stats);
  // Each edge probed at most once per side, two moves per probe.
  EXPECT_LE(stats.total_moves, 4 * g.edge_count());
}

TEST(MapDrawing, InvariantUnderPortPermutations) {
  const graph::Graph g = graph::petersen();
  const graph::Placement p(10, {0, 1});
  const auto want = bicolored_cert(g, p);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const graph::Graph h =
        g.permute_ports(graph::random_port_permutations(g, seed));
    const auto maps = draw_maps(h, p, seed);
    for (const AgentMap& m : maps) {
      EXPECT_EQ(bicolored_cert(m.graph, m.placement()), want);
    }
  }
}

TEST(MapDrawing, ConcurrentAgentsDoNotInterfere) {
  // Many agents drawing simultaneously under a random scheduler; every map
  // must still be perfect.
  const graph::Graph g = graph::cube_connected_cycles(3);
  graph::Placement p(24, {0, 5, 11, 17, 23});
  const auto want = bicolored_cert(g, p);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto maps = draw_maps(g, p, seed);
    ASSERT_EQ(maps.size(), 5u);
    for (const AgentMap& m : maps) {
      EXPECT_EQ(bicolored_cert(m.graph, m.placement()), want);
    }
  }
}

TEST(MapDrawingBfs, ProducesIsomorphicMaps) {
  for (const graph::Graph& g :
       {graph::ring(7), graph::hypercube(3), graph::petersen(),
        graph::figure2c().graph, graph::random_connected(10, 0.3, 4)}) {
    const graph::Placement p(g.node_count(), {0});
    const auto want = bicolored_cert(g, p);
    World w(g, p, 21);
    auto maps = std::make_shared<std::vector<AgentMap>>();
    const auto r = w.run(
        [maps](AgentCtx& ctx) -> Behavior {
          maps->push_back(co_await map_drawing_bfs(ctx));
          ctx.declare_failure_detected();
        },
        RunConfig{});
    ASSERT_TRUE(r.completed) << g.describe();
    EXPECT_EQ(bicolored_cert((*maps)[0].graph, (*maps)[0].placement()), want)
        << g.describe();
    // BFS order: map node indices are sorted by tree depth, i.e. BFS layer
    // indices are non-decreasing in discovery order.
    const auto dist = (*maps)[0].graph.bfs_distances(0);
    for (std::size_t v = 1; v < dist.size(); ++v) {
      EXPECT_GE(dist[v], dist[v - 1] - 1);
    }
  }
}

TEST(MapDrawingBfs, CostExceedsDfsOnLargeGraphs) {
  // The ablation claim: DFS O(|E|) vs BFS O(n |E|)-ish.
  const graph::Graph g = graph::torus({5, 5});
  const graph::Placement p(25, {0});
  auto run_with = [&](bool bfs) {
    World w(g, p, 13);
    sim::RunResult out;
    const auto r = w.run(
        [bfs](AgentCtx& ctx) -> Behavior {
          if (bfs) {
            co_await map_drawing_bfs(ctx);
          } else {
            co_await map_drawing(ctx);
          }
          ctx.declare_failure_detected();
        },
        RunConfig{});
    EXPECT_TRUE(r.completed);
    return r.total_moves;
  };
  const std::size_t dfs_moves = run_with(false);
  const std::size_t bfs_moves = run_with(true);
  EXPECT_LE(dfs_moves, 4 * g.edge_count());
  EXPECT_GT(bfs_moves, dfs_moves);
}

TEST(AgentMapHelpers, RouteIsShortestAndValid) {
  const graph::Graph g = graph::torus({3, 5});
  const auto dist = g.bfs_distances(0);
  for (graph::NodeId t = 0; t < g.node_count(); ++t) {
    const auto ports = route(g, 0, t);
    EXPECT_EQ(ports.size(), static_cast<std::size_t>(dist[t]));
    graph::NodeId cursor = 0;
    for (graph::PortId p : ports) cursor = g.peer(cursor, p).to;
    EXPECT_EQ(cursor, t);
  }
}

TEST(AgentMapHelpers, TourVisitsEverythingAndReturns) {
  const graph::Graph g = graph::random_connected(15, 0.25, 5);
  std::vector<graph::NodeId> order;
  const auto ports = tour_ports(g, 2, &order);
  EXPECT_EQ(ports.size(), order.size());
  std::vector<bool> seen(g.node_count(), false);
  seen[2] = true;
  graph::NodeId cursor = 2;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    cursor = g.peer(cursor, ports[i]).to;
    EXPECT_EQ(cursor, order[i]);
    seen[cursor] = true;
  }
  EXPECT_EQ(cursor, 2u);  // tour returns to start
  for (bool b : seen) EXPECT_TRUE(b);
  EXPECT_LE(ports.size(), 2 * (g.node_count() - 1));
}

TEST(AgentMapHelpers, PlacementFromMap) {
  AgentMap m;
  m.graph = graph::ring(4);
  m.base_color.assign(4, std::nullopt);
  sim::ColorUniverse u(1);
  m.base_color[0] = u.mint();
  m.base_color[2] = u.mint();
  m.base_id.assign(4, std::nullopt);
  EXPECT_EQ(m.agent_count(), 2u);
  EXPECT_EQ(m.home_base_nodes(), (std::vector<graph::NodeId>{0, 2}));
  EXPECT_TRUE(m.placement().is_home_base(2));
}

}  // namespace
}  // namespace qelect::core
