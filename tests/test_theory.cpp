// Cross-theorem validation: the library's strongest scientific tests.
//
// The centerpiece is the *corrected Theorem 4.1 dichotomy*: on Cayley
// graphs, election is impossible iff SOME regular subgroup of Aut(G) has a
// nontrivial color-preserving translation subgroup, and that happens iff
// the gcd of the (automorphism) equivalence-class sizes exceeds 1.  The
// paper's literal statement quantifies over one "selected" group and is
// refuted by (C_4, {0,1}); the exhaustive sweeps below validate the
// corrected statement over every placement of every small Cayley graph.
#include <gtest/gtest.h>

#include <numeric>

#include "qelect/cayley/marking.hpp"
#include "qelect/cayley/recognition.hpp"
#include "qelect/cayley/translation.hpp"
#include "qelect/core/analysis.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/group/cayley_graph.hpp"
#include "qelect/iso/automorphism.hpp"
#include "qelect/util/math.hpp"
#include "qelect/util/rng.hpp"
#include "qelect/views/symmetricity.hpp"

namespace qelect {
namespace {

using graph::Placement;

struct CayleyCase {
  std::string name;
  graph::Graph g;
};

std::vector<CayleyCase> cayley_catalog() {
  std::vector<CayleyCase> out;
  for (std::size_t n = 3; n <= 8; ++n) {
    out.push_back({"ring" + std::to_string(n), graph::ring(n)});
  }
  out.push_back({"k4", graph::complete(4)});
  out.push_back({"k5", graph::complete(5)});
  out.push_back({"q3", graph::hypercube(3)});
  out.push_back({"torus33", graph::torus({3, 3})});
  out.push_back({"circ6-12", graph::circulant(6, {1, 2})});
  out.push_back({"circ8-13", graph::circulant(8, {1, 3})});
  out.push_back({"dihedral4", group::cayley_dihedral(4).graph});
  out.push_back({"quaternion", group::cayley_quaternion().graph});
  out.push_back({"star3", group::cayley_star_graph(3).graph});
  return out;
}

/// Enumerates all placements for small node counts, samples for larger.
std::vector<Placement> placements_for(std::size_t n, std::uint64_t seed) {
  std::vector<Placement> out;
  if (n <= 6) {
    for (std::size_t r = 1; r <= n; ++r) {
      const auto all = graph::enumerate_placements(n, r);
      out.insert(out.end(), all.begin(), all.end());
    }
  } else {
    Xoshiro256 rng(seed);
    for (std::size_t r = 1; r <= n; ++r) {
      for (int k = 0; k < 8; ++k) {
        out.push_back(graph::random_placement(n, r, rng.next()));
      }
    }
  }
  return out;
}

TEST(Theory, CorrectedTheorem41DichotomyOnCayleyGraphs) {
  // For every (Cayley G, p):  gcd(|C_1|..|C_k|) > 1
  //   <=>  some regular subgroup has |R_p| > 1.
  std::size_t instances = 0;
  for (const CayleyCase& c : cayley_catalog()) {
    const auto rec = cayley::recognize_cayley(c.g);
    ASSERT_TRUE(rec.is_cayley) << c.name;
    ASSERT_TRUE(rec.aut_enumeration_complete) << c.name;
    for (const Placement& p : placements_for(c.g.node_count(), 17)) {
      const auto plan = core::protocol_plan(c.g, p);
      const std::size_t obstruction =
          cayley::max_translation_obstruction(rec.regular_subgroups, p);
      EXPECT_EQ(plan.final_gcd > 1, obstruction > 1)
          << c.name << " r=" << p.agent_count()
          << " gcd=" << plan.final_gcd << " obstruction=" << obstruction;
      ++instances;
    }
  }
  // The sweep must be substantial to mean anything.
  EXPECT_GT(instances, 400u);
}

TEST(Theory, PaperTheorem41LiteralFormHasCounterexample) {
  // Documented finding: with Gamma = Z_4 "selected", (C_4, {0,1}) has all
  // translation classes of size 1 (gcd 1), yet election is impossible.
  const graph::Graph c4 = graph::ring(4);
  const Placement p(4, {0, 1});
  const auto rec = cayley::recognize_cayley(c4);
  ASSERT_TRUE(rec.is_cayley);
  // Locate the Z_4 subgroup (its generator has order 4).
  bool found_z4 = false;
  for (const auto& sub : rec.regular_subgroups) {
    const auto& rho = sub.element(1);
    const auto sq = iso::compose(rho, rho);
    if (sq != iso::identity_permutation(4)) {
      found_z4 = true;
      const auto tc = cayley::translation_classes(sub, p);
      EXPECT_EQ(tc.stabilizer_order, 1u);  // "gcd 1" under the paper's rule
    }
  }
  EXPECT_TRUE(found_z4);
  // ...and yet the instance is impossible (Theorem 2.1, exhaustively).
  EXPECT_TRUE(core::impossibility_by_exhaustive_labelings(c4, p, 2));
  // The corrected test catches it through the other subgroup.
  EXPECT_EQ(cayley::max_translation_obstruction(rec.regular_subgroups, p),
            2u);
}

TEST(Theory, ObstructingSubgroupYieldsImpossibilityLabeling) {
  // Theorem 4.1's constructive half: when |R_p| = d > 1 for a regular
  // subgroup, the natural Cayley labeling of that group structure has all
  // ~lab classes of size d, satisfying Theorem 2.1's premise.
  struct Inst {
    graph::Graph g;
    Placement p;
  };
  const std::vector<Inst> insts = {
      {graph::ring(6), Placement(6, {0, 3})},
      {graph::ring(4), Placement(4, {0, 1})},
      {graph::ring(4), Placement(4, {0, 2})},
      {graph::hypercube(3), Placement(8, {0, 7})},
  };
  for (const auto& inst : insts) {
    const auto rec = cayley::recognize_cayley(inst.g);
    ASSERT_TRUE(rec.is_cayley);
    bool verified = false;
    for (const auto& sub : rec.regular_subgroups) {
      const std::size_t d =
          cayley::color_preserving_translation_count(sub, inst.p);
      if (d <= 1) continue;
      // Rebuild the group structure and its natural labeling on the
      // original node set.
      const auto rc = cayley::reconstruct_group(inst.g, sub);
      const group::GeneratingSet gens(rc.gamma, rc.generators);
      const auto cg = group::make_cayley_graph(rc.gamma, gens);
      const auto sizes = views::label_class_sizes(cg.graph, inst.p,
                                                  cg.natural_labeling());
      for (const std::uint64_t s : sizes) EXPECT_EQ(s, d);
      verified = true;
    }
    EXPECT_TRUE(verified) << inst.g.describe();
  }
}

TEST(Theory, MarkingProcessAgreesWithRecognizedSubgroups) {
  // The Theorem 4.1 marking process run on reconstructed group structures
  // must land on classes of size |R_p|.
  const graph::Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  const auto rec = cayley::recognize_cayley(g);
  for (const auto& sub : rec.regular_subgroups) {
    const auto rc = cayley::reconstruct_group(g, sub);
    const group::GeneratingSet gens(rc.gamma, rc.generators);
    const auto cg = group::make_cayley_graph(rc.gamma, gens);
    const auto res = cayley::theorem41_marking(cg, p);
    EXPECT_EQ(res.final_class_size,
              cayley::color_preserving_translation_count(sub, p));
  }
}

TEST(Theory, Lemma21AllLabelClassesSameSize) {
  // Lemma 2.1 over every labeling of small instances.
  struct Inst {
    graph::Graph g;
    Placement p;
    std::size_t alphabet;
  };
  const std::vector<Inst> insts = {
      {graph::ring(4), Placement(4, {0}), 2},
      {graph::ring(4), Placement(4, {0, 1}), 2},
      {graph::path(4), Placement(4, {1}), 2},
      {graph::complete(3), Placement(3, {0}), 2},
  };
  for (const auto& inst : insts) {
    for (const auto& l : graph::enumerate_labelings(inst.g, inst.alphabet)) {
      const auto sizes = views::label_class_sizes(inst.g, inst.p, l);
      for (const std::uint64_t s : sizes) {
        EXPECT_EQ(s, sizes.front());
      }
    }
  }
}

TEST(Theory, Theorem21ImpliesGcdObstruction) {
  // Consistency of Theorems 2.1 and 3.1: if some labeling proves the
  // instance impossible, ELECT's sufficient condition must fail
  // (gcd > 1) -- otherwise ELECT would elect on an impossible instance.
  for (std::size_t n = 3; n <= 5; ++n) {
    const graph::Graph g = graph::ring(n);
    for (std::size_t r = 1; r <= n; ++r) {
      for (const Placement& p : graph::enumerate_placements(n, r)) {
        if (core::impossibility_by_exhaustive_labelings(g, p, 2)) {
          EXPECT_GT(core::protocol_plan(g, p).final_gcd, 1u)
              << "n=" << n << " r=" << r;
        }
      }
    }
  }
}

TEST(Theory, PetersenLabelClassesAreSingletonsInSample) {
  // Section 4: for the Petersen pair, every edge-labeling yields ~lab
  // classes of size 1 while gcd of the ~ classes is 2 -- the gap between
  // d and the gcd.  Exhausting all labelings is infeasible; sample widely.
  const graph::Graph g = graph::petersen();
  const Placement p(10, {0, 5});
  EXPECT_EQ(core::protocol_plan(g, p).final_gcd, 2u);
  Xoshiro256 rng(71);
  for (int trial = 0; trial < 40; ++trial) {
    graph::EdgeLabeling l = graph::EdgeLabeling::zeros(g);
    for (graph::NodeId x = 0; x < 10; ++x) {
      // Random permutation of 3 symbols per node.
      std::vector<graph::Symbol> symbols{0, 1, 2};
      rng.shuffle(symbols);
      for (graph::PortId q = 0; q < 3; ++q) l.set(x, q, symbols[q]);
    }
    const auto sizes = views::label_class_sizes(g, p, l);
    for (const std::uint64_t s : sizes) EXPECT_EQ(s, 1u);
  }
}

TEST(Theory, ReductionScheduleMatchesPhaseArithmetic) {
  // The d_i cascade from the plan equals gcd prefixes of the class sizes
  // (the invariant in Theorem 3.1's proof).
  const graph::Graph g = graph::circulant(8, {1, 3});
  for (const Placement& p : placements_for(8, 5)) {
    const auto plan = core::protocol_plan(g, p);
    std::uint64_t running = plan.sizes.front();
    for (std::size_t i = 0; i < plan.d.size(); ++i) {
      running = std::gcd(running, plan.sizes[i + 1]);
      EXPECT_EQ(plan.d[i], running);
    }
    EXPECT_EQ(plan.final_gcd, gcd_all(plan.sizes));
  }
}

TEST(Theory, VertexTransitiveButNotCayleyExists) {
  // Confirms the Sabidussi discussion: the Petersen graph is
  // vertex-transitive yet carries no regular subgroup.
  const graph::Graph g = graph::petersen();
  EXPECT_TRUE(iso::is_vertex_transitive(iso::from_bicolored_graph(
      g, Placement::empty(10))));
  EXPECT_FALSE(cayley::recognize_cayley(g).is_cayley);
}

}  // namespace
}  // namespace qelect
