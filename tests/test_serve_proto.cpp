// Wire-protocol tests: framing (round-trip, truncation, corruption,
// oversize), the bounds-checked payload cursor, and the request/response
// encodings.  Everything here is pure byte manipulation -- no sockets, no
// service -- so a failure is unambiguously a protocol bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "qelect/serve/protocol.hpp"

namespace qelect::serve {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(Framing, RoundTripsHeaderAndPayload) {
  const auto payload = bytes({1, 2, 3, 250, 251, 252});
  const auto frame = encode_frame(Opcode::kSigma, 0xDEADBEEFCAFEull, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + payload.size());

  FrameHeader header;
  std::vector<std::uint8_t> decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(frame.data(), frame.size(), &header, &decoded,
                         &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(header.version, kVersion);
  EXPECT_EQ(header.opcode, static_cast<std::uint16_t>(Opcode::kSigma));
  EXPECT_EQ(header.request_id, 0xDEADBEEFCAFEull);
  EXPECT_EQ(header.payload_size, payload.size());
  EXPECT_EQ(decoded, payload);
  EXPECT_EQ(consumed, frame.size());
}

TEST(Framing, EmptyPayloadRoundTrips) {
  const auto frame = encode_frame(Opcode::kPing, 7, {});
  ASSERT_EQ(frame.size(), kHeaderSize);
  FrameHeader header;
  std::vector<std::uint8_t> decoded;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(frame.data(), frame.size(), &header, &decoded,
                         &consumed),
            DecodeStatus::kOk);
  EXPECT_TRUE(decoded.empty());
}

TEST(Framing, EveryTruncationAsksForMoreBytes) {
  const auto frame = encode_frame(Opcode::kElectable, 3, bytes({9, 8, 7}));
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    FrameHeader header;
    std::vector<std::uint8_t> decoded;
    std::size_t consumed = 999;
    EXPECT_EQ(decode_frame(frame.data(), cut, &header, &decoded, &consumed),
              DecodeStatus::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(Framing, TwoPipelinedFramesDecodeInSequence) {
  auto stream = encode_frame(Opcode::kPing, 1, {});
  const auto second = encode_frame(Opcode::kStats, 2, bytes({42}));
  stream.insert(stream.end(), second.begin(), second.end());

  FrameHeader header;
  std::vector<std::uint8_t> payload;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(stream.data(), stream.size(), &header, &payload,
                         &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(header.request_id, 1u);
  ASSERT_EQ(decode_frame(stream.data() + consumed, stream.size() - consumed,
                         &header, &payload, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(header.request_id, 2u);
  EXPECT_EQ(payload, bytes({42}));
}

TEST(Framing, RejectsBadMagic) {
  auto frame = encode_frame(Opcode::kPing, 1, {});
  frame[0] ^= 0xFF;
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), &header, &payload,
                         &consumed),
            DecodeStatus::kBadMagic);
}

TEST(Framing, RejectsUnknownVersion) {
  auto frame = encode_frame(Opcode::kPing, 1, {});
  frame[4] = 0x7F;  // version lives at offset 4
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), &header, &payload,
                         &consumed),
            DecodeStatus::kBadVersion);
}

TEST(Framing, RejectsCorruptedPayload) {
  auto frame = encode_frame(Opcode::kSigma, 1, bytes({1, 2, 3, 4}));
  frame[kHeaderSize + 2] ^= 0x01;  // flip one payload bit
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), &header, &payload,
                         &consumed),
            DecodeStatus::kBadChecksum);
}

TEST(Framing, RejectsCorruptedChecksumField) {
  auto frame = encode_frame(Opcode::kSigma, 1, bytes({1, 2, 3, 4}));
  frame[20] ^= 0x01;  // checksum lives at offset 20
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), &header, &payload,
                         &consumed),
            DecodeStatus::kBadChecksum);
}

TEST(Framing, OversizedPayloadDetectedFromHeaderAlone) {
  // A header declaring a huge payload must be rejected before the payload
  // arrives: only kHeaderSize bytes are handed to the decoder.
  const std::vector<std::uint8_t> big(17, 0);
  auto frame = encode_frame(Opcode::kSigma, 1, big);
  frame.resize(kHeaderSize);  // payload "still in flight"
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), &header, &payload,
                         &consumed, /*max_payload=*/16),
            DecodeStatus::kOversized);
  // Under the default limit the same prefix just needs more bytes.
  EXPECT_EQ(decode_frame(frame.data(), frame.size(), &header, &payload,
                         &consumed),
            DecodeStatus::kNeedMore);
}

TEST(Framing, ChecksumIsPinned) {
  // Pin the checksum function to exact values: changing basis, prime, or
  // byte order silently would break every deployed client.
  const std::uint8_t a = 'a';
  EXPECT_EQ(payload_checksum(nullptr, 0), 0x14650fb0739d0383ull);
  EXPECT_EQ(payload_checksum(&a, 1), 0x44bd8ad473cd9906ull);
  const auto abc = bytes({'a', 'b', 'c'});
  EXPECT_EQ(payload_checksum(abc.data(), abc.size()), 0xe16801510db89efdull);
}

TEST(WireReader, LatchesOnOverrun) {
  const auto buf = bytes({1, 0, 0, 0});
  WireReader r(buf);
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.u8(), 0u);  // past the end
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  EXPECT_EQ(r.u64(), 0u);  // still latched
  EXPECT_FALSE(r.ok());
}

TEST(WireReader, RejectsStringLongerThanBuffer) {
  WireWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');
  const auto buf = w.take();
  WireReader r(buf);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(WireReader, StringRoundTrip) {
  WireWriter w;
  w.str("hypercube");
  w.u64(42);
  const auto buf = w.take();
  WireReader r(buf);
  EXPECT_EQ(r.str(), "hypercube");
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_TRUE(r.done());
}

TEST(Opcodes, NamesRoundTrip) {
  for (std::uint16_t code = 1; known_opcode(code); ++code) {
    const Opcode op = static_cast<Opcode>(code);
    const auto parsed = opcode_from_name(opcode_name(op));
    ASSERT_TRUE(parsed.has_value()) << opcode_name(op);
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(opcode_from_name("no-such-op").has_value());
  EXPECT_FALSE(known_opcode(0));
  EXPECT_FALSE(known_opcode(7));
}

TEST(Requests, ElectableRoundTrip) {
  InstanceRef inst;
  inst.family = "torus";
  inst.params = {4, 6};
  inst.home_bases = {0, 5, 11};
  InstanceRef out;
  ASSERT_TRUE(decode_electable_request(encode_electable_request(inst), &out));
  EXPECT_EQ(out.family, inst.family);
  EXPECT_EQ(out.params, inst.params);
  EXPECT_EQ(out.home_bases, inst.home_bases);
}

TEST(Requests, SigmaRoundTrip) {
  SigmaRequest req;
  req.instance.family = "ring";
  req.instance.params = {8};
  req.alphabet = 3;
  SigmaRequest out;
  ASSERT_TRUE(decode_sigma_request(encode_sigma_request(req), &out));
  EXPECT_EQ(out.instance.family, "ring");
  EXPECT_EQ(out.instance.params, std::vector<std::uint64_t>{8});
  EXPECT_TRUE(out.instance.home_bases.empty());
  EXPECT_EQ(out.alphabet, 3u);
}

TEST(Requests, RunElectRoundTrip) {
  RunElectRequest req;
  req.instance.family = "hypercube";
  req.instance.params = {3};
  req.instance.home_bases = {0, 7};
  req.seed = 0x123456789ull;
  req.scheduler = "lockstep";
  RunElectRequest out;
  ASSERT_TRUE(decode_run_elect_request(encode_run_elect_request(req), &out));
  EXPECT_EQ(out.instance.family, "hypercube");
  EXPECT_EQ(out.seed, 0x123456789ull);
  EXPECT_EQ(out.scheduler, "lockstep");
  EXPECT_EQ(out.replicas, 1u);
}

TEST(Requests, RunElectReplicasAreATrailingOptional) {
  RunElectRequest req;
  req.instance = {"ring", {6}, {0, 2}};
  req.seed = 9;
  req.scheduler = "counter";

  // replicas == 1 encodes without the field: byte-identical to a
  // pre-replica client's request (same cache keys, same framing).
  const auto single = encode_run_elect_request(req);
  req.replicas = 1;
  EXPECT_EQ(encode_run_elect_request(req), single);
  RunElectRequest out;
  ASSERT_TRUE(decode_run_elect_request(single, &out));
  EXPECT_EQ(out.replicas, 1u);

  req.replicas = 64;
  const auto burst = encode_run_elect_request(req);
  EXPECT_EQ(burst.size(), single.size() + 4);
  ASSERT_TRUE(decode_run_elect_request(burst, &out));
  EXPECT_EQ(out.replicas, 64u);
  EXPECT_EQ(out.scheduler, "counter");

  // replicas == 0 is meaningless and rejected at the wire layer.
  req.replicas = 0;
  EXPECT_FALSE(decode_run_elect_request(encode_run_elect_request(req), &out));
}

TEST(Responses, RunElectReplicaVerdictsRoundTrip) {
  WireWriter w;
  w.u32(kStatusOk);
  std::vector<ReplicaVerdict> verdicts(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    verdicts[i].completed = 1;
    verdicts[i].clean_election = i % 2;
    verdicts[i].matches_oracle = 1;
    verdicts[i].final_gcd = 1;
    verdicts[i].moves = 100 + i;
    verdicts[i].steps = 1000 + i;
  }
  w.u8(verdicts[0].completed);
  w.u8(verdicts[0].clean_election);
  w.u8(verdicts[0].clean_failure);
  w.u8(verdicts[0].matches_oracle);
  w.u64(verdicts[0].final_gcd);
  w.u64(verdicts[0].moves);
  w.u64(verdicts[0].steps);
  w.u32(3);
  for (const ReplicaVerdict& v : verdicts) {
    w.u8(v.completed);
    w.u8(v.clean_election);
    w.u8(v.clean_failure);
    w.u8(v.matches_oracle);
    w.u64(v.final_gcd);
    w.u64(v.moves);
    w.u64(v.steps);
  }
  const auto payload = w.take();
  RunElectResponse resp;
  ASSERT_TRUE(decode_run_elect_response(payload, &resp));
  EXPECT_EQ(resp.moves, 100u);
  ASSERT_EQ(resp.replicas.size(), 3u);
  EXPECT_EQ(resp.replicas[0], verdicts[0]);
  EXPECT_EQ(resp.replicas[2], verdicts[2]);

  // A truncated replica list must not decode.
  std::vector<std::uint8_t> cut(payload.begin(), payload.end() - 5);
  EXPECT_FALSE(decode_run_elect_response(cut, &resp));
}

TEST(Requests, TrailingGarbageIsRejected) {
  auto payload = encode_electable_request({"ring", {6}, {0}});
  payload.push_back(0);
  InstanceRef out;
  EXPECT_FALSE(decode_electable_request(payload, &out));
}

TEST(Requests, TruncatedPayloadIsRejected) {
  const auto payload = encode_run_elect_request(
      {{"ring", {6}, {0, 3}}, 9, "random"});
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    RunElectRequest out;
    std::vector<std::uint8_t> prefix(payload.begin(),
                                     payload.begin() + cut);
    EXPECT_FALSE(decode_run_elect_request(prefix, &out))
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(Requests, AbsurdCountsAreRejected) {
  // A forged params count must not drive a giant allocation loop.
  WireWriter w;
  w.str("ring");
  w.u32(0xFFFFFFFF);  // params count
  InstanceRef out;
  EXPECT_FALSE(decode_electable_request(w.take(), &out));

  WireWriter w2;
  w2.str("ring");
  w2.u32(0);
  w2.u32(0xFFFFFFFF);  // home-base count
  EXPECT_FALSE(decode_electable_request(w2.take(), &out));
}

TEST(Responses, ErrorRoundTripsThroughEveryDecoder) {
  const auto payload = encode_error_response(kStatusTooLarge, "too big");
  ElectableResponse e;
  ASSERT_TRUE(decode_electable_response(payload, &e));
  EXPECT_EQ(e.head.status, kStatusTooLarge);
  EXPECT_EQ(e.head.error, "too big");
  SigmaResponse s;
  ASSERT_TRUE(decode_sigma_response(payload, &s));
  EXPECT_EQ(s.head.status, kStatusTooLarge);
  ViewClassesResponse v;
  ASSERT_TRUE(decode_view_classes_response(payload, &v));
  RunElectResponse r;
  ASSERT_TRUE(decode_run_elect_response(payload, &r));
  StatsResponse st;
  ASSERT_TRUE(decode_stats_response(payload, &st));
  EXPECT_EQ(st.head.error, "too big");
}

TEST(Responses, StatusNamesAreStable) {
  EXPECT_STREQ(status_name(kStatusOk), "ok");
  EXPECT_STREQ(status_name(kStatusBadRequest), "bad-request");
  EXPECT_STREQ(status_name(kStatusUnknownOpcode), "unknown-opcode");
  EXPECT_STREQ(status_name(kStatusTooLarge), "too-large");
  EXPECT_STREQ(status_name(kStatusError), "error");
  EXPECT_STREQ(status_name(99), "?");
}

}  // namespace
}  // namespace qelect::serve
