// Property-based suites (parameterized sweeps): randomized instances, every
// invariant cross-checked between the live protocols and the offline
// oracles.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/core/map_drawing.hpp"
#include "qelect/core/surrounding.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/iso/automorphism.hpp"
#include "qelect/iso/canonical.hpp"
#include "qelect/iso/equivalence.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/util/math.hpp"
#include "qelect/util/rng.hpp"

namespace qelect {
namespace {

using graph::Placement;

// ---------------------------------------------------------------------------
// Random (G, p) instances: n nodes, r agents, seeded.

struct RandomInstanceParam {
  std::size_t n;
  std::size_t r;
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const RandomInstanceParam& p) {
  return os << "n" << p.n << "_r" << p.r << "_s" << p.seed;
}

class RandomInstanceProperty
    : public ::testing::TestWithParam<RandomInstanceParam> {
 protected:
  graph::Graph make_graph() const {
    const auto& param = GetParam();
    return graph::random_connected(param.n, 0.3, param.seed);
  }
  Placement make_placement(const graph::Graph& g) const {
    const auto& param = GetParam();
    return graph::random_placement(g.node_count(), param.r,
                                   param.seed ^ 0xabcdefULL);
  }
};

TEST_P(RandomInstanceProperty, ElectMatchesOracle) {
  const graph::Graph g = make_graph();
  const Placement p = make_placement(g);
  const auto plan = core::protocol_plan(g, p);
  sim::World w(g, p, GetParam().seed + 1);
  sim::RunConfig cfg;
  cfg.seed = GetParam().seed + 2;
  const sim::RunResult r = w.run(core::make_elect_protocol(), cfg);
  ASSERT_TRUE(r.completed);
  if (plan.final_gcd == 1) {
    EXPECT_TRUE(r.clean_election());
  } else {
    EXPECT_TRUE(r.clean_failure());
  }
  // Never more than one leader, whatever happens.
  EXPECT_LE(r.leader_count(), 1u);
  // Theorem 3.1 move budget with a generous constant.
  EXPECT_LE(r.total_moves,
            64 * p.agent_count() * g.edge_count() + 64);
}

TEST_P(RandomInstanceProperty, MapsAreFaithful) {
  const graph::Graph g = make_graph();
  const Placement p = make_placement(g);
  sim::World w(g, p, GetParam().seed + 5);
  auto maps = std::make_shared<std::vector<core::AgentMap>>();
  const auto r = w.run(
      [maps](sim::AgentCtx& ctx) -> sim::Behavior {
        maps->push_back(co_await core::map_drawing(ctx));
        ctx.declare_failure_detected();
      },
      sim::RunConfig{});
  ASSERT_TRUE(r.completed);
  const auto want =
      iso::canonical_certificate(iso::from_bicolored_graph(g, p));
  for (const auto& m : *maps) {
    EXPECT_EQ(iso::canonical_certificate(
                  iso::from_bicolored_graph(m.graph, m.placement())),
              want);
  }
}

TEST_P(RandomInstanceProperty, SurroundingClassesMatchOrbitClasses) {
  const graph::Graph g = make_graph();
  const Placement p = make_placement(g);
  auto a = core::surrounding_classes(g, p).classes;
  auto b = iso::equivalence_classes(iso::from_bicolored_graph(g, p)).classes;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_P(RandomInstanceProperty, CanonicalCertificateRelabelingInvariant) {
  const graph::Graph g = make_graph();
  const Placement p = make_placement(g);
  const auto d = iso::from_bicolored_graph(g, p);
  const auto base = iso::canonical_certificate(d);
  const auto sigma =
      graph::random_node_permutation(g.node_count(), GetParam().seed + 9);
  const auto relabeled = iso::from_bicolored_graph(g.relabel_nodes(sigma),
                                                   p.relabel(sigma));
  EXPECT_EQ(iso::canonical_certificate(relabeled), base);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomInstanceProperty,
    ::testing::Values(
        RandomInstanceParam{8, 1, 11}, RandomInstanceParam{8, 2, 12},
        RandomInstanceParam{8, 3, 13}, RandomInstanceParam{8, 8, 14},
        RandomInstanceParam{10, 2, 21}, RandomInstanceParam{10, 4, 22},
        RandomInstanceParam{10, 7, 23}, RandomInstanceParam{12, 3, 31},
        RandomInstanceParam{12, 5, 32}, RandomInstanceParam{12, 12, 33},
        RandomInstanceParam{14, 4, 41}, RandomInstanceParam{14, 9, 42}),
    [](const auto& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

// ---------------------------------------------------------------------------
// Structured instances: the Cayley families under many scheduler seeds.

struct ScheduledParam {
  std::size_t family;  // 0 = ring6{0,2}, 1 = ring6{0,3}, 2 = cube{0,3,5}
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const ScheduledParam& p) {
  return os << "f" << p.family << "_s" << p.seed;
}

class SchedulerSweep : public ::testing::TestWithParam<ScheduledParam> {};

TEST_P(SchedulerSweep, OutcomeIsSchedulerIndependent) {
  const auto& param = GetParam();
  graph::Graph g = param.family == 2 ? graph::hypercube(3) : graph::ring(6);
  const Placement p = param.family == 0   ? Placement(6, {0, 2})
                      : param.family == 1 ? Placement(6, {0, 3})
                                          : Placement(8, {0, 3, 5});
  const std::uint64_t want_gcd = core::protocol_plan(g, p).final_gcd;
  sim::World w(std::move(g), p, param.seed * 3 + 1);
  sim::RunConfig cfg;
  cfg.seed = param.seed;
  const auto r = w.run(core::make_elect_protocol(), cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.clean_election(), want_gcd == 1);
  EXPECT_EQ(r.clean_failure(), want_gcd != 1);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SchedulerSweep,
    ::testing::Values(ScheduledParam{0, 1}, ScheduledParam{0, 2},
                      ScheduledParam{0, 3}, ScheduledParam{0, 4},
                      ScheduledParam{1, 1}, ScheduledParam{1, 2},
                      ScheduledParam{1, 3}, ScheduledParam{1, 4},
                      ScheduledParam{2, 1}, ScheduledParam{2, 2},
                      ScheduledParam{2, 3}, ScheduledParam{2, 4}),
    [](const auto& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

// ---------------------------------------------------------------------------
// Euclid dynamics over random size pairs.

class ReducePairProperty
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(ReducePairProperty, AgentReduceConvergesToGcdMonotonically) {
  const auto [a, b] = GetParam();
  const auto traj = agent_reduce_trajectory(a, b);
  const std::uint64_t g = std::gcd(a, b);
  EXPECT_EQ(traj.back().searching, g);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    // The total number of live agents strictly decreases each round.
    EXPECT_LT(traj[i].searching + traj[i].waiting,
              traj[i - 1].searching + traj[i - 1].waiting);
    EXPECT_EQ(std::gcd(traj[i].searching, traj[i].waiting), g);
  }
}

TEST_P(ReducePairProperty, NodeReduceRoundsAreLogarithmic) {
  const auto [a, b] = GetParam();
  const auto traj = node_reduce_trajectory(a, b);
  EXPECT_EQ(traj.back().searching, std::gcd(a, b));
  // Remainder dynamics: at most ~2 log2(max) rounds.
  const double bound = 2.0 * std::log2(static_cast<double>(std::max(a, b))) + 4;
  EXPECT_LE(static_cast<double>(traj.size()), bound);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ReducePairProperty,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{1, 1},
                      std::pair<std::uint64_t, std::uint64_t>{2, 3},
                      std::pair<std::uint64_t, std::uint64_t>{12, 18},
                      std::pair<std::uint64_t, std::uint64_t>{35, 64},
                      std::pair<std::uint64_t, std::uint64_t>{89, 144},
                      std::pair<std::uint64_t, std::uint64_t>{100, 7},
                      std::pair<std::uint64_t, std::uint64_t>{1000, 999},
                      std::pair<std::uint64_t, std::uint64_t>{1024, 64}));

// ---------------------------------------------------------------------------
// Tree instances: ELECT on random trees (always asymmetric enough?  no --
// trees can be symmetric too; oracle decides).

class TreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeProperty, ElectOnRandomTrees) {
  const std::uint64_t seed = GetParam();
  const graph::Graph g = graph::random_tree(9, seed);
  const Placement p = graph::random_placement(9, 1 + seed % 4, seed * 7 + 1);
  const auto plan = core::protocol_plan(g, p);
  sim::World w(g, p, seed + 50);
  const auto r = w.run(core::make_elect_protocol(), sim::RunConfig{});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.clean_election(), plan.final_gcd == 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Color-seed independence on a fixed instance (qualitative soundness).

class ColorSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColorSeedProperty, OutcomeIgnoresColorTokens) {
  const graph::Graph g = graph::torus({3, 3});
  const Placement p(9, {0, 4});
  const auto plan = core::protocol_plan(g, p);
  sim::World w(g, p, GetParam());
  const auto r = w.run(core::make_elect_protocol(), sim::RunConfig{});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.clean_election(), plan.final_gcd == 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColorSeedProperty,
                         ::testing::Range<std::uint64_t>(100, 110));

}  // namespace
}  // namespace qelect
