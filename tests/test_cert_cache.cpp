// CertificateCache: exactness of the structural key, hit/miss/eviction
// behavior, hash-consing, and thread safety.  The MultithreadedHammer test
// is the one the CI sanitizer job runs under TSan: every operation on the
// cache goes through one mutex, and the test drives concurrent hits,
// misses, racing inserts of the same key, and evictions through it.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "qelect/graph/families.hpp"
#include "qelect/graph/placement.hpp"
#include "qelect/iso/canonical.hpp"
#include "qelect/iso/cert_cache.hpp"
#include "qelect/iso/colored_digraph.hpp"

namespace qelect::iso {
namespace {

using graph::Placement;

ColoredDigraph instance(std::size_t ring_size, std::size_t base) {
  const graph::Graph g = graph::ring(ring_size);
  return from_bicolored_graph(
      g, Placement(g.node_count(), {static_cast<graph::NodeId>(base)}));
}

TEST(CertCache, StructuralKeyIsExact) {
  const ColoredDigraph a = instance(6, 0);
  const ColoredDigraph b = instance(6, 0);
  const ColoredDigraph c = instance(6, 1);  // isomorphic but not equal
  EXPECT_EQ(structural_key(a), structural_key(b));
  EXPECT_NE(structural_key(a), structural_key(c));
}

TEST(CertCache, HitReturnsTheSameSharedCertificate) {
  CertificateCache cache(16);
  const ColoredDigraph g = instance(5, 0);
  const auto first = cache.certificate(g);
  const auto second = cache.certificate(g);
  EXPECT_EQ(first.get(), second.get());  // hash-consed, not just equal
  EXPECT_EQ(*first, canonical_certificate(g));
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(CertCache, IsomorphicButDistinctGraphsGetDistinctEntries) {
  CertificateCache cache(16);
  const auto ca = cache.certificate(instance(6, 0));
  const auto cb = cache.certificate(instance(6, 1));
  EXPECT_NE(ca.get(), cb.get());
  EXPECT_EQ(*ca, *cb);  // same certificate value: the graphs are iso
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(CertCache, EvictsLeastRecentlyUsed) {
  CertificateCache cache(2);
  const ColoredDigraph a = instance(4, 0);
  const ColoredDigraph b = instance(5, 0);
  const ColoredDigraph c = instance(6, 0);
  cache.certificate(a);
  cache.certificate(b);
  cache.certificate(a);  // refresh a: b is now the LRU entry
  cache.certificate(c);  // evicts b
  const auto s1 = cache.stats();
  EXPECT_EQ(s1.evictions, 1u);
  EXPECT_EQ(s1.entries, 2u);
  EXPECT_NE(cache.lookup(structural_key(a)), nullptr);
  EXPECT_EQ(cache.lookup(structural_key(b)), nullptr);
  EXPECT_NE(cache.lookup(structural_key(c)), nullptr);
}

TEST(CertCache, FillPastBoundEvictsInExactLruOrder) {
  // The server shares one bounded cache across every worker, so the
  // eviction discipline is load-bearing: fill well past the bound and
  // check that exactly the oldest-touched entries fall out, in order, and
  // that the counters add up.
  constexpr std::size_t kCapacity = 4;
  constexpr std::size_t kTotal = 10;  // rings 3..12
  CertificateCache cache(kCapacity);
  std::vector<ColoredDigraph> graphs;
  for (std::size_t ring = 3; ring < 3 + kTotal; ++ring) {
    graphs.push_back(instance(ring, 0));
    cache.certificate(graphs.back());
    const auto s = cache.stats();
    EXPECT_EQ(s.entries, std::min(graphs.size(), kCapacity));
    EXPECT_EQ(s.evictions,
              graphs.size() > kCapacity ? graphs.size() - kCapacity : 0u);
  }
  // Insertion order is touch order here, so exactly the last kCapacity
  // graphs survive and everything older was evicted.
  for (std::size_t i = 0; i < kTotal; ++i) {
    const bool resident = i >= kTotal - kCapacity;
    EXPECT_EQ(cache.lookup(structural_key(graphs[i])) != nullptr, resident)
        << "graph " << i;
  }
  const auto s = cache.stats();
  // One miss per distinct fill, then the probe loop: resident probes hit,
  // evicted probes miss.
  EXPECT_EQ(s.misses, kTotal + (kTotal - kCapacity));
  EXPECT_EQ(s.hits, kCapacity);
  EXPECT_EQ(s.insertions, kTotal);
  EXPECT_EQ(s.evictions, kTotal - kCapacity);
  EXPECT_EQ(s.entries, kCapacity);
}

TEST(CertCache, SetCapacityShrinksByEvictingLru) {
  CertificateCache cache(8);
  std::vector<ColoredDigraph> graphs;
  for (std::size_t ring = 3; ring <= 8; ++ring) {
    graphs.push_back(instance(ring, 0));
    cache.certificate(graphs.back());
  }
  cache.certificate(graphs[0]);  // refresh the oldest entry
  cache.set_capacity(2);
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_EQ(s.evictions, 4u);
  // The refreshed first graph and the most recent fill survive.
  EXPECT_NE(cache.lookup(structural_key(graphs[0])), nullptr);
  EXPECT_NE(cache.lookup(structural_key(graphs.back())), nullptr);
  // Growing back is allowed and evicts nothing further.
  cache.set_capacity(16);
  EXPECT_EQ(cache.stats().capacity, 16u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(CertCache, ClearResetsEntriesAndStats) {
  CertificateCache cache(8);
  cache.certificate(instance(4, 0));
  cache.clear();
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.hits + s.misses + s.insertions + s.evictions, 0u);
  EXPECT_EQ(s.capacity, 8u);
}

TEST(CertCache, RacingInsertKeepsOneValue) {
  CertificateCache cache(8);
  const ColoredDigraph g = instance(5, 0);
  const Certificate cert = canonical_certificate(g);
  const auto a = cache.insert(structural_key(g), cert);
  const auto b = cache.insert(structural_key(g), cert);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(CertCache, MultithreadedHammer) {
  // Small capacity on purpose: concurrent hits, misses, racing inserts of
  // the same key, and evictions all happen at once.  Run under TSan in CI.
  CertificateCache cache(4);
  std::vector<ColoredDigraph> graphs;
  std::vector<Certificate> expected;
  for (std::size_t ring = 3; ring <= 8; ++ring) {
    graphs.push_back(instance(ring, 0));
    expected.push_back(canonical_certificate(graphs.back()));
  }
  constexpr unsigned kThreads = 8;
  constexpr std::size_t kIters = 300;
  std::vector<unsigned> wrong(kThreads, 0);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        const std::size_t pick = (i * (t + 1) + t) % graphs.size();
        const auto cert = cache.certificate(graphs[pick]);
        if (*cert != expected[pick]) ++wrong[t];
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (unsigned t = 0; t < kThreads; ++t) EXPECT_EQ(wrong[t], 0u);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kIters);
  EXPECT_LE(s.entries, 4u);
}

}  // namespace
}  // namespace qelect::iso
