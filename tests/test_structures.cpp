// Tests for the extended structural toolkit: generalized Petersen graphs,
// the wrapped butterfly, view depths (Norris), and graph IO.
#include <gtest/gtest.h>

#include "qelect/cayley/recognition.hpp"
#include "qelect/cayley/translation.hpp"
#include "qelect/core/analysis.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/graph/io.hpp"
#include "qelect/iso/automorphism.hpp"
#include "qelect/iso/canonical.hpp"
#include "qelect/iso/colored_digraph.hpp"
#include "qelect/iso/enumerate.hpp"
#include "qelect/util/assert.hpp"
#include "qelect/views/views.hpp"

namespace qelect {
namespace {

using graph::Placement;

iso::Certificate cert_of(const graph::Graph& g) {
  return iso::canonical_certificate(
      iso::from_bicolored_graph(g, Placement::empty(g.node_count())));
}

TEST(GeneralizedPetersen, GP52IsThePetersenGraph) {
  EXPECT_EQ(cert_of(graph::generalized_petersen(5, 2)),
            cert_of(graph::petersen()));
}

TEST(GeneralizedPetersen, GP41IsTheCube) {
  EXPECT_EQ(cert_of(graph::generalized_petersen(4, 1)),
            cert_of(graph::hypercube(3)));
}

TEST(GeneralizedPetersen, MoebiusKantorIsCayley) {
  // GP(8, 3): 16 nodes, vertex-transitive AND Cayley (k^2 = 9 = 1 mod 8).
  const graph::Graph g = graph::generalized_petersen(8, 3);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_TRUE(g.is_regular());
  const auto rec = cayley::recognize_cayley(g);
  EXPECT_TRUE(rec.is_cayley);
  EXPECT_TRUE(iso::is_vertex_transitive(
      iso::from_bicolored_graph(g, Placement::empty(16))));
}

TEST(GeneralizedPetersen, GP72IsNotVertexTransitive) {
  // k^2 = 4 is neither +1 nor -1 mod 7: inner and outer rims differ.
  const graph::Graph g = graph::generalized_petersen(7, 2);
  EXPECT_FALSE(iso::is_vertex_transitive(
      iso::from_bicolored_graph(g, Placement::empty(14))));
  EXPECT_FALSE(cayley::recognize_cayley(g).is_cayley);
}

TEST(GeneralizedPetersen, DesarguesIsVertexTransitive) {
  // GP(10, 3): the Desargues graph (k^2 = 9 = -1 mod 10).
  const graph::Graph g = graph::generalized_petersen(10, 3);
  EXPECT_TRUE(iso::is_vertex_transitive(
      iso::from_bicolored_graph(g, Placement::empty(20))));
}

TEST(GeneralizedPetersen, ParameterValidation) {
  EXPECT_THROW(graph::generalized_petersen(4, 2), CheckError);  // k = n/2
  EXPECT_THROW(graph::generalized_petersen(5, 0), CheckError);
}

TEST(WrappedButterfly, Structure) {
  const graph::Graph g = graph::wrapped_butterfly(3);
  EXPECT_EQ(g.node_count(), 24u);
  EXPECT_EQ(g.edge_count(), 48u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.is_simple());
  // Vertex-transitive (it is a Cayley graph of a wreath-type group).
  EXPECT_TRUE(iso::is_vertex_transitive(
      iso::from_bicolored_graph(g, Placement::empty(24))));
}

TEST(WrappedButterfly, RejectsDegenerateDimensions) {
  EXPECT_THROW(graph::wrapped_butterfly(2), CheckError);
}

TEST(ViewDepth, NorrisBoundHolds) {
  struct Case {
    graph::Graph g;
  };
  for (const graph::Graph& g :
       {graph::path(7), graph::ring(8), graph::petersen(),
        graph::hypercube(3), graph::star(5),
        graph::random_connected(12, 0.3, 3)}) {
    const Placement p = Placement::empty(g.node_count());
    const auto l = graph::EdgeLabeling::from_ports(g);
    const std::size_t depth = views::view_depth_needed(g, p, l);
    EXPECT_LE(depth, g.node_count() - 1) << g.describe();
    // Definition check: depth rounds reach the fixed point, depth-1 do not.
    const auto d = iso::from_labeled_graph(g, p, l);
    const auto fixed = iso::refine(d);
    EXPECT_EQ(iso::refine_rounds(d, d.colors(), depth), fixed);
    if (depth > 0) {
      EXPECT_NE(iso::refine_rounds(d, d.colors(), depth - 1), fixed);
    }
  }
}

TEST(ViewDepth, SymmetricLabelingNeedsZeroRounds) {
  // The natural ring labeling keeps all views identical: the initial
  // (uncolored) partition is already stable.
  const auto cg = group::cayley_ring(8);
  EXPECT_EQ(views::view_depth_needed(cg.graph,
                                     Placement::empty(8),
                                     cg.natural_labeling()),
            0u);
}

TEST(ViewDepth, PathDepthGrowsWithLength) {
  const auto depth_of = [](std::size_t n) {
    const graph::Graph g = graph::path(n);
    return views::view_depth_needed(g, Placement::empty(n),
                                    graph::EdgeLabeling::from_ports(g));
  };
  EXPECT_LT(depth_of(4), depth_of(10));
}

TEST(GraphIo, EdgeListRoundTrip) {
  for (const graph::Graph& g :
       {graph::petersen(), graph::figure2c().graph,
        graph::random_connected(9, 0.4, 8)}) {
    const graph::Graph back = graph::from_edge_list(graph::to_edge_list(g));
    EXPECT_EQ(back, g) << g.describe();
  }
}

TEST(GraphIo, ParsesCommentsAndWhitespace) {
  const graph::Graph g = graph::from_edge_list(
      "# a triangle\n n 3 \n\n e 0 1  # first\n e 1 2\n e 2 0\n");
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_THROW(graph::from_edge_list("e 0 1\n"), CheckError);   // e before n
  EXPECT_THROW(graph::from_edge_list("n 2\ne 0 5\n"), CheckError);
  EXPECT_THROW(graph::from_edge_list("n 2\nx 0 1\n"), CheckError);
  EXPECT_THROW(graph::from_edge_list(""), CheckError);
  EXPECT_THROW(graph::from_edge_list("n 2\nn 3\n"), CheckError);
}

TEST(GraphIo, DotExportMentionsHomeBases) {
  const graph::Graph g = graph::ring(4);
  const Placement p(4, {1});
  const std::string dot = graph::to_dot(g, &p);
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=black"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
}

TEST(ViewQuotient, SymmetricRingCollapsesToOneLoopNode) {
  const auto cg = group::cayley_ring(8);
  const auto q = views::view_quotient(cg.graph, Placement::empty(8),
                                      cg.natural_labeling());
  EXPECT_EQ(q.graph.node_count(), 1u);
  EXPECT_EQ(q.graph.edge_count(), 1u);  // a single loop: degree 2 preserved
  EXPECT_EQ(q.fiber_size, 8u);
  EXPECT_TRUE(q.realizable);
  EXPECT_EQ(q.graph.degree(0), 2u);
}

TEST(ViewQuotient, AsymmetricLabelingIsIdentityQuotient) {
  const graph::Graph g = graph::path(5);
  const auto q = views::view_quotient(g, Placement::empty(5),
                                      graph::EdgeLabeling::from_ports(g));
  // Port labeling of a path separates... compute: fiber size must be 1 and
  // the quotient isomorphic to the path itself if all views distinct.
  if (q.fiber_size == 1) {
    EXPECT_EQ(q.graph.node_count(), 5u);
    EXPECT_EQ(q.graph.edge_count(), 4u);
  }
  // Fibration law regardless: n = fiber * quotient nodes.
  EXPECT_EQ(q.fiber_size * q.graph.node_count(), 5u);
}

TEST(ViewQuotient, DegreePreservedOnRealizableQuotients) {
  // C_6 with a labeling making antipodal nodes view-equivalent: the
  // natural labeling of Cay(Z_6) is fully symmetric; instead place one
  // agent to split classes and check the fibration degree law on whatever
  // partition arises.
  struct Case {
    graph::Graph g;
    Placement p;
    graph::EdgeLabeling l;
  };
  const auto cg6 = group::cayley_ring(6);
  const auto cg4 = group::cayley_torus(3, 3);
  const std::vector<Case> cases = {
      {cg6.graph, Placement(6, {0, 3}), cg6.natural_labeling()},
      {cg4.graph, Placement(9, {0}), cg4.natural_labeling()},
  };
  for (const auto& c : cases) {
    const auto q = views::view_quotient(c.g, c.p, c.l);
    EXPECT_EQ(q.fiber_size * q.graph.node_count(), c.g.node_count());
    if (q.realizable) {
      for (graph::NodeId x = 0; x < c.g.node_count(); ++x) {
        EXPECT_EQ(q.graph.degree(q.projection[x]), c.g.degree(x));
      }
    }
  }
}

TEST(ViewQuotient, HalfEdgeCaseFlagged) {
  // K_2 with the same symbol at both ends: both nodes share one view; the
  // quotient would need a half-edge.
  const graph::Graph k2 = graph::complete(2);
  graph::EdgeLabeling l = graph::EdgeLabeling::zeros(k2);
  const auto q = views::view_quotient(k2, Placement::empty(2), l);
  EXPECT_EQ(q.graph.node_count(), 1u);
  EXPECT_FALSE(q.realizable);
}

TEST(Enumerate, CountsMatchOeisA001349) {
  const std::size_t expected[] = {1, 1, 2, 6, 21, 112};
  for (std::size_t n = 1; n <= 6; ++n) {
    EXPECT_EQ(iso::all_connected_graphs(n).size(), expected[n - 1]) << n;
  }
  EXPECT_THROW(iso::all_connected_graphs(7), CheckError);
}

TEST(Enumerate, GraphsArePairwiseNonIsomorphicAndConnected) {
  const auto graphs = iso::all_connected_graphs(5);
  std::vector<iso::Certificate> certs;
  for (const auto& g : graphs) {
    EXPECT_TRUE(g.is_connected());
    EXPECT_TRUE(g.is_simple());
    EXPECT_EQ(g.node_count(), 5u);
    certs.push_back(cert_of(g));
  }
  for (std::size_t i = 0; i < certs.size(); ++i) {
    for (std::size_t j = i + 1; j < certs.size(); ++j) {
      EXPECT_NE(certs[i], certs[j]);
    }
  }
}

TEST(Enumerate, LandscapeInvariantsUpToFiveNodes) {
  // Every instance with gcd > 1 on a Cayley graph must carry a translation
  // obstruction (the corrected Theorem 4.1 dichotomy), across the complete
  // landscape of graphs up to 5 nodes.
  for (std::size_t n = 2; n <= 5; ++n) {
    for (const auto& g : iso::all_connected_graphs(n)) {
      const auto rec = cayley::recognize_cayley(g);
      for (std::size_t r = 1; r <= n; ++r) {
        for (const auto& p : graph::enumerate_placements(n, r)) {
          const auto plan = core::protocol_plan(g, p);
          if (plan.final_gcd > 1 && rec.is_cayley) {
            EXPECT_GT(cayley::max_translation_obstruction(
                          rec.regular_subgroups, p),
                      1u)
                << g.describe() << " r=" << r;
          }
        }
      }
    }
  }
}

TEST(ConjugacyClasses, C4HasTwoGroupStructures) {
  const graph::Graph g = graph::ring(4);
  const auto rec = cayley::recognize_cayley(g);
  ASSERT_EQ(rec.regular_subgroups.size(), 2u);
  const auto autos = iso::all_automorphisms(iso::from_bicolored_graph(
      g, Placement::empty(4)));
  ASSERT_TRUE(autos.has_value());
  const auto classes =
      cayley::conjugacy_classes_of_subgroups(rec.regular_subgroups, *autos);
  // Z_4 and Z_2 x Z_2 are non-isomorphic, hence never conjugate.
  EXPECT_EQ(classes.size(), 2u);
}

TEST(ConjugacyClasses, HypercubeSubgroupsCollapse) {
  // Q_3 carries 10 regular subgroups but far fewer genuinely different
  // structures up to symmetry.
  const graph::Graph g = graph::hypercube(3);
  const auto rec = cayley::recognize_cayley(g);
  ASSERT_EQ(rec.regular_subgroups.size(), 10u);
  const auto autos = iso::all_automorphisms(iso::from_bicolored_graph(
      g, Placement::empty(8)));
  ASSERT_TRUE(autos.has_value());
  const auto classes =
      cayley::conjugacy_classes_of_subgroups(rec.regular_subgroups, *autos);
  EXPECT_LT(classes.size(), 10u);
  // Conjugate subgroups have isomorphic abstract groups: same abelianness.
  for (const auto& cls : classes) {
    const bool abelian0 =
        cayley::reconstruct_group(g, rec.regular_subgroups[cls.front()])
            .gamma.is_abelian();
    for (const std::size_t i : cls) {
      EXPECT_EQ(cayley::reconstruct_group(g, rec.regular_subgroups[i])
                    .gamma.is_abelian(),
                abelian0);
    }
  }
}

}  // namespace
}  // namespace qelect
