// Unit tests for the graph module: port-graph invariants, families, the
// Figure 2 example constructions, labelings, and placements.
#include <gtest/gtest.h>

#include <set>

#include "qelect/graph/families.hpp"
#include "qelect/graph/graph.hpp"
#include "qelect/graph/labeling.hpp"
#include "qelect/graph/placement.hpp"
#include "qelect/util/assert.hpp"

namespace qelect::graph {
namespace {

// Every port's peer must point back: peer(peer(x, p)) == (x, p).
void expect_port_involution(const Graph& g) {
  for (NodeId x = 0; x < g.node_count(); ++x) {
    for (PortId p = 0; p < g.degree(x); ++p) {
      const HalfEdge& h = g.peer(x, p);
      const HalfEdge& back = g.peer(h.to, h.to_port);
      EXPECT_EQ(back.to, x);
      EXPECT_EQ(back.to_port, p);
      EXPECT_EQ(back.edge, h.edge);
    }
  }
}

TEST(Graph, AddEdgeAssignsSequentialPorts) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.peer(0, 0).to, 1u);
  EXPECT_EQ(g.peer(0, 1).to, 2u);
  expect_port_involution(g);
}

TEST(Graph, LoopOccupiesTwoPorts) {
  Graph g(1);
  g.add_edge(0, 0);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.peer(0, 0).to, 0u);
  EXPECT_EQ(g.peer(0, 0).to_port, 1u);
  EXPECT_FALSE(g.is_simple());
  expect_port_involution(g);
}

TEST(Graph, ParallelEdgesSupported) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_FALSE(g.is_simple());
  expect_port_involution(g);
}

TEST(Graph, BfsAndDiameter) {
  const Graph g = ring(6);
  const auto dist = g.bfs_distances(0);
  EXPECT_EQ(dist[3], 3);
  EXPECT_EQ(dist[5], 1);
  EXPECT_EQ(g.diameter(), 3);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, DisconnectedDetected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  EXPECT_EQ(g.diameter(), -1);
}

TEST(Graph, FromExplicitEdgesRoundTrip) {
  const Graph g = hypercube(3);
  Graph h = Graph::from_explicit_edges(g.node_count(), g.edges());
  EXPECT_EQ(g, h);
}

TEST(Graph, FromExplicitEdgesRejectsPortGaps) {
  // Node 0 uses port 1 but never port 0.
  EXPECT_THROW(Graph::from_explicit_edges(
                   2, {Edge{0, 1, 1, 0}}),
               CheckError);
}

TEST(Graph, PermutePortsPreservesTopology) {
  const Graph g = petersen();
  const auto perms = random_port_permutations(g, 99);
  const Graph h = g.permute_ports(perms);
  EXPECT_EQ(h.node_count(), g.node_count());
  EXPECT_EQ(h.edge_count(), g.edge_count());
  expect_port_involution(h);
  // Same multiset of neighbor sets.
  for (NodeId x = 0; x < g.node_count(); ++x) {
    std::multiset<NodeId> a, b;
    for (PortId p = 0; p < g.degree(x); ++p) {
      a.insert(g.peer(x, p).to);
      b.insert(h.peer(x, p).to);
    }
    EXPECT_EQ(a, b);
  }
}

TEST(Graph, PermutePortsRejectsNonPermutation) {
  const Graph g = ring(4);
  auto perms = random_port_permutations(g, 1);
  perms[0][0] = perms[0][1];
  EXPECT_THROW(g.permute_ports(perms), CheckError);
}

TEST(Graph, RelabelNodesIsIsomorphicCopy) {
  const Graph g = cube_connected_cycles(3);
  const auto sigma = random_node_permutation(g.node_count(), 5);
  const Graph h = g.relabel_nodes(sigma);
  expect_port_involution(h);
  EXPECT_EQ(h.edge_count(), g.edge_count());
  for (NodeId x = 0; x < g.node_count(); ++x) {
    EXPECT_EQ(h.degree(sigma[x]), g.degree(x));
    for (PortId p = 0; p < g.degree(x); ++p) {
      EXPECT_EQ(h.peer(sigma[x], p).to, sigma[g.peer(x, p).to]);
    }
  }
}

TEST(Families, RingBasics) {
  const Graph g = ring(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_TRUE(g.is_simple());
  EXPECT_THROW(ring(2), CheckError);
}

TEST(Families, HypercubePortsFlipBits) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.node_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);
  for (NodeId x = 0; x < g.node_count(); ++x) {
    for (PortId p = 0; p < 4; ++p) {
      EXPECT_EQ(g.peer(x, p).to, x ^ (1u << p));
      EXPECT_EQ(g.peer(x, p).to_port, p);
    }
  }
}

TEST(Families, TorusDegreesAndSize) {
  const Graph g = torus({3, 4});
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_TRUE(g.is_simple());
  // Side length 2 halves that axis' degree contribution.
  const Graph h = torus({2, 3});
  EXPECT_EQ(h.degree(0), 3u);
  EXPECT_TRUE(h.is_simple());
}

TEST(Families, CompleteAndStar) {
  EXPECT_EQ(complete(5).edge_count(), 10u);
  EXPECT_EQ(star(7).node_count(), 8u);
  EXPECT_EQ(star(7).degree(0), 7u);
  EXPECT_EQ(complete_bipartite(2, 3).edge_count(), 6u);
}

TEST(Families, PetersenIsThreeRegularGirth5) {
  const Graph g = petersen();
  EXPECT_EQ(g.node_count(), 10u);
  EXPECT_EQ(g.edge_count(), 15u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_TRUE(g.is_simple());
  EXPECT_EQ(g.diameter(), 2);
  // Strongly regular (10, 3, 0, 1): adjacent pairs share 0 neighbors.
  for (const Edge& e : g.edges()) {
    std::set<NodeId> nu, nv;
    for (PortId p = 0; p < 3; ++p) {
      nu.insert(g.peer(e.u, p).to);
      nv.insert(g.peer(e.v, p).to);
    }
    std::vector<NodeId> common;
    std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                          std::back_inserter(common));
    EXPECT_TRUE(common.empty());
  }
}

TEST(Families, CccStructure) {
  const Graph g = cube_connected_cycles(3);
  EXPECT_EQ(g.node_count(), 24u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Families, CirculantDegrees) {
  const Graph g = circulant(8, {1, 2});
  EXPECT_EQ(g.degree(0), 4u);
  // Antipodal offset contributes a single edge.
  const Graph h = circulant(8, {4});
  EXPECT_EQ(h.degree(0), 1u);
  EXPECT_EQ(h.edge_count(), 4u);
}

TEST(Families, RandomConnectedIsConnected) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_TRUE(random_connected(12, 0.2, seed).is_connected());
  }
}

TEST(Families, RandomTreeHasNMinus1Edges) {
  const Graph g = random_tree(20, 3);
  EXPECT_EQ(g.edge_count(), 19u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Families, Figure2cMatchesPaper) {
  const Fig2cExample ex = figure2c();
  EXPECT_EQ(ex.graph.node_count(), 3u);
  EXPECT_EQ(ex.graph.edge_count(), 6u);  // 3 ring + 2 parallel + 1 loop
  EXPECT_TRUE(ex.labeling.locally_distinct(ex.graph));
  // Every node has degree 4 (ring 2 + mess 2).
  for (NodeId x = 0; x < 3; ++x) EXPECT_EQ(ex.graph.degree(x), 4u);
}

TEST(Families, Figure2PathLabelings) {
  const Fig2PathExample ex = figure2_path();
  EXPECT_TRUE(ex.quantitative.locally_distinct(ex.graph));
  EXPECT_TRUE(ex.qualitative.locally_distinct(ex.graph));
  EXPECT_EQ(ex.quantitative.alphabet_size(), 2u);
  EXPECT_EQ(ex.qualitative.alphabet_size(), 3u);
}

TEST(Labeling, FromPortsIsLocallyDistinct) {
  const Graph g = petersen();
  EXPECT_TRUE(EdgeLabeling::from_ports(g).locally_distinct(g));
}

TEST(Labeling, EnumerateCountsForTinyGraphs) {
  // P2: one edge, each endpoint picks one of `alphabet` symbols.
  const Graph p2 = path(2);
  EXPECT_EQ(enumerate_labelings(p2, 2).size(), 4u);
  // P3: middle node needs 2 distinct of 2 (2 ways), ends free (2 each).
  const Graph p3 = path(3);
  EXPECT_EQ(enumerate_labelings(p3, 2).size(), 2u * 2u * 2u);
  EXPECT_THROW(enumerate_labelings(star(3), 2), CheckError);
}

TEST(Placement, BasicsAndColors) {
  const Placement p(5, {1, 3});
  EXPECT_TRUE(p.is_home_base(1));
  EXPECT_FALSE(p.is_home_base(0));
  EXPECT_EQ(p.agent_count(), 2u);
  const auto colors = p.node_colors();
  EXPECT_EQ(colors, (std::vector<std::uint32_t>{0, 1, 0, 1, 0}));
  EXPECT_THROW(Placement(3, {0, 0}), CheckError);
  EXPECT_THROW(Placement(3, {5}), CheckError);
}

TEST(Placement, EnumerateCombinations) {
  EXPECT_EQ(enumerate_placements(5, 2).size(), 10u);
  EXPECT_EQ(enumerate_placements(4, 0).size(), 1u);
  EXPECT_EQ(enumerate_placements(4, 4).size(), 1u);
}

TEST(Placement, RelabelFollowsSigma) {
  const Placement p(4, {0, 2});
  const std::vector<NodeId> sigma{3, 2, 1, 0};
  const Placement q = p.relabel(sigma);
  EXPECT_TRUE(q.is_home_base(3));
  EXPECT_TRUE(q.is_home_base(1));
  EXPECT_FALSE(q.is_home_base(0));
}

TEST(Placement, RandomPlacementValid) {
  const Placement p = random_placement(10, 4, 77);
  EXPECT_EQ(p.agent_count(), 4u);
}

}  // namespace
}  // namespace qelect::graph
