// Tests for the baselines: the quantitative universal protocol elects on
// every instance (Table 1's "Yes" column), and the anonymous walker
// reproduces the Section 1.3 indistinguishability argument.
#include <gtest/gtest.h>

#include "qelect/util/assert.hpp"

#include <memory>

#include "qelect/core/baselines.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/world.hpp"

namespace qelect::core {
namespace {

using graph::Placement;
using sim::RunConfig;
using sim::RunResult;
using sim::World;

TEST(Quantitative, ElectsOnEveryInstance) {
  // Including the instances where qualitative election is impossible.
  struct Case {
    graph::Graph g;
    Placement p;
  };
  const std::vector<Case> cases = {
      {graph::complete(2), Placement(2, {0, 1})},
      {graph::ring(6), Placement(6, {0, 3})},
      {graph::ring(4), Placement(4, {0, 1})},
      {graph::hypercube(3), Placement(8, {0, 7})},
      {graph::petersen(), Placement(10, {0, 5})},
      {graph::ring(5), Placement(5, {0, 1, 2, 3, 4})},
  };
  for (const auto& c : cases) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      World w = World::quantitative(c.g, c.p, seed);
      RunConfig cfg;
      cfg.seed = seed;
      const RunResult r = w.run(make_quantitative_protocol(), cfg);
      ASSERT_TRUE(r.completed);
      EXPECT_TRUE(r.clean_election()) << c.g.describe();
    }
  }
}

TEST(Quantitative, RequiresQuantitativeWorld) {
  World w(graph::ring(4), Placement(4, {0}), 1);
  EXPECT_THROW(w.run(make_quantitative_protocol(), RunConfig{}), qelect::CheckError);
}

TEST(Quantitative, MoveCostIsMapDrawingOnly) {
  const graph::Graph g = graph::torus({3, 4});
  const Placement p(12, {0, 5, 7});
  World w = World::quantitative(g, p, 9);
  const RunResult r = w.run(make_quantitative_protocol(), RunConfig{});
  ASSERT_TRUE(r.clean_election());
  EXPECT_LE(r.total_moves, 4 * p.agent_count() * g.edge_count());
}

TEST(AnonymousWalker, Ring3VsRing6Indistinguishable) {
  // Section 1.3: one agent on C_3 and two antipodal agents on C_6 observe
  // identical histories under the synchronous scheduler, so no anonymous
  // protocol can distinguish the two inputs -- yet election is possible in
  // the former and not in the latter.
  const std::size_t steps = 12;

  auto traces3 = std::make_shared<WalkTraces>();
  World w3(graph::ring(3), Placement(3, {0}), 1);
  RunConfig cfg;
  cfg.policy = sim::SchedulerPolicy::Lockstep;
  ASSERT_TRUE(w3.run(make_anonymous_walker(traces3, steps), cfg).completed);

  auto traces6 = std::make_shared<WalkTraces>();
  World w6(graph::ring(6), Placement(6, {0, 3}), 2);
  ASSERT_TRUE(w6.run(make_anonymous_walker(traces6, steps), cfg).completed);

  ASSERT_EQ(traces3->size(), 1u);
  ASSERT_EQ(traces6->size(), 2u);
  // Every agent, in both worlds, sees the same observation history.
  EXPECT_EQ((*traces6)[0], (*traces3)[0]);
  EXPECT_EQ((*traces6)[1], (*traces3)[0]);
}

TEST(AnonymousWalker, SymmetricAgentsStaySymmetricForever) {
  // Two antipodal agents on an even ring remain in identical states under
  // lockstep: no step count breaks the symmetry.
  for (const std::size_t steps : {5u, 20u, 50u}) {
    auto traces = std::make_shared<WalkTraces>();
    World w(graph::ring(8), Placement(8, {0, 4}), 3);
    RunConfig cfg;
    cfg.policy = sim::SchedulerPolicy::Lockstep;
    ASSERT_TRUE(w.run(make_anonymous_walker(traces, steps), cfg).completed);
    ASSERT_EQ(traces->size(), 2u);
    EXPECT_EQ((*traces)[0], (*traces)[1]);
  }
}

TEST(AnonymousWalker, AsymmetricPlacementEventuallyDiffers) {
  // Sanity check of the harness itself: with a symmetry-breaking placement
  // (distance 1 vs 3 on C_6... use {0, 1}) the histories diverge -- the
  // walkers bump into each other's signs at different times.
  auto traces = std::make_shared<WalkTraces>();
  World w(graph::ring(6), Placement(6, {0, 1}), 4);
  RunConfig cfg;
  cfg.policy = sim::SchedulerPolicy::Lockstep;
  ASSERT_TRUE(w.run(make_anonymous_walker(traces, 12), cfg).completed);
  ASSERT_EQ(traces->size(), 2u);
  EXPECT_NE((*traces)[0], (*traces)[1]);
}

}  // namespace
}  // namespace qelect::core
