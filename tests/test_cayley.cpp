// Tests for Cayley recognition, Sabidussi reconstruction, translation
// classes, and the Theorem 4.1 marking process.
#include <gtest/gtest.h>

#include "qelect/cayley/marking.hpp"
#include "qelect/iso/automorphism.hpp"
#include "qelect/cayley/recognition.hpp"
#include "qelect/cayley/translation.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/iso/canonical.hpp"
#include "qelect/iso/colored_digraph.hpp"
#include "qelect/views/symmetricity.hpp"

namespace qelect::cayley {
namespace {

using graph::Placement;

TEST(Recognition, RingIsCayley) {
  const auto rec = recognize_cayley(graph::ring(6));
  EXPECT_TRUE(rec.is_cayley);
  EXPECT_EQ(rec.aut_order, 12u);
  // C_6 carries Z_6 and S_3 regular subgroups.
  EXPECT_GE(rec.regular_subgroups.size(), 2u);
  for (const auto& r : rec.regular_subgroups) {
    EXPECT_EQ(r.order(), 6u);
  }
}

TEST(Recognition, C4CarriesTwoGroups) {
  // The heart of the documented Theorem 4.1 gap: C_4 = Cay(Z_4) and
  // Cay(Z_2 x Z_2).
  const auto rec = recognize_cayley(graph::ring(4));
  EXPECT_TRUE(rec.is_cayley);
  EXPECT_EQ(rec.regular_subgroups.size(), 2u);
}

TEST(Recognition, HypercubeAndCompleteAreCayley) {
  EXPECT_TRUE(recognize_cayley(graph::hypercube(3)).is_cayley);
  EXPECT_TRUE(recognize_cayley(graph::complete(5)).is_cayley);
  EXPECT_TRUE(recognize_cayley(graph::torus({3, 3})).is_cayley);
}

TEST(Recognition, PetersenIsNotCayley) {
  // The canonical vertex-transitive non-Cayley graph.
  const auto rec = recognize_cayley(graph::petersen());
  EXPECT_FALSE(rec.is_cayley);
  EXPECT_EQ(rec.aut_order, 120u);
  EXPECT_TRUE(rec.aut_enumeration_complete);
}

TEST(Recognition, NonTransitiveGraphsRejectedFast) {
  EXPECT_FALSE(recognize_cayley(graph::path(4)).is_cayley);
  EXPECT_FALSE(recognize_cayley(graph::star(3)).is_cayley);
  // Regular but not vertex-transitive would also be rejected; regularity
  // shortcut covers the path/star cases already.
}

TEST(Recognition, RegularSubgroupsActRegularly) {
  const auto rec = recognize_cayley(graph::hypercube(3));
  ASSERT_TRUE(rec.is_cayley);
  for (const auto& sub : rec.regular_subgroups) {
    // element(v) maps 0 to v; non-identity elements are fixed-point free.
    for (graph::NodeId v = 0; v < sub.order(); ++v) {
      EXPECT_EQ(sub.element(v)[0], v);
      if (v != 0) {
        for (graph::NodeId x = 0; x < sub.order(); ++x) {
          EXPECT_NE(sub.element(v)[x], x);
        }
      }
    }
  }
}

TEST(Recognition, ReconstructionRoundTrips) {
  for (const graph::Graph& g :
       {graph::ring(6), graph::hypercube(3), graph::complete(4)}) {
    const auto rec = recognize_cayley(g);
    ASSERT_TRUE(rec.is_cayley) << g.describe();
    const ReconstructedCayley rc =
        reconstruct_group(g, rec.regular_subgroups.front());
    EXPECT_EQ(rc.gamma.size(), g.node_count());
    const group::GeneratingSet gens(rc.gamma, rc.generators);
    const group::CayleyGraph cg = group::make_cayley_graph(rc.gamma, gens);
    // The reconstructed Cayley graph is isomorphic to the original.
    const auto a = iso::canonical_certificate(iso::from_bicolored_graph(
        g, Placement::empty(g.node_count())));
    const auto b = iso::canonical_certificate(iso::from_bicolored_graph(
        cg.graph, Placement::empty(cg.graph.node_count())));
    EXPECT_EQ(a, b) << g.describe();
  }
}

TEST(Translation, ClassesAreOrbitsOfRp) {
  // C_6 with antipodal agents: R_p = {id, +3} for Z_6; classes of size 2.
  const auto rec = recognize_cayley(graph::ring(6));
  ASSERT_TRUE(rec.is_cayley);
  const Placement p(6, {0, 3});
  // Find the cyclic subgroup (the one containing a 6-cycle rotation).
  bool found_cyclic = false;
  for (const auto& sub : rec.regular_subgroups) {
    // Z_6 has an element of order 6; check via iterating element(1).
    const auto& rho = sub.element(1);
    std::size_t order = 1;
    auto cur = rho;
    while (cur != iso::identity_permutation(6)) {
      cur = iso::compose(rho, cur);
      ++order;
      if (order > 6) break;
    }
    if (order == 6) {
      found_cyclic = true;
      const TranslationClasses tc = translation_classes(sub, p);
      EXPECT_EQ(tc.stabilizer_order, 2u);
      EXPECT_EQ(tc.classes.size(), 3u);
      for (const auto& c : tc.classes) EXPECT_EQ(c.size(), 2u);
    }
  }
  EXPECT_TRUE(found_cyclic);
}

TEST(Translation, GapInstanceC4Adjacent) {
  // (C_4, {0,1}): Z_4 gives |R_p| = 1 but Z_2 x Z_2 gives |R_p| = 2; the
  // corrected test must report obstruction 2.
  const auto rec = recognize_cayley(graph::ring(4));
  ASSERT_TRUE(rec.is_cayley);
  const Placement p(4, {0, 1});
  std::vector<std::size_t> counts;
  for (const auto& sub : rec.regular_subgroups) {
    counts.push_back(color_preserving_translation_count(sub, p));
  }
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(max_translation_obstruction(rec.regular_subgroups, p), 2u);
}

TEST(Translation, SingleAgentNeverObstructed) {
  for (const graph::Graph& g : {graph::ring(5), graph::hypercube(3)}) {
    const auto rec = recognize_cayley(g);
    ASSERT_TRUE(rec.is_cayley);
    const Placement p(g.node_count(), {0});
    EXPECT_EQ(max_translation_obstruction(rec.regular_subgroups, p), 1u);
  }
}

TEST(Marking, RingAntipodalProducesSize2Classes) {
  const group::CayleyGraph cg = group::cayley_ring(6);
  const Placement p(6, {0, 3});
  const MarkingResult res = theorem41_marking(cg, p);
  EXPECT_EQ(res.final_class_size, 2u);
  EXPECT_EQ(res.final_classes.size(), 3u);
}

TEST(Marking, FinalClassesEqualLabelEquivalenceOfNaturalLabeling) {
  // The whole point of the construction: the process's final partition is
  // the ~lab partition of the natural Cayley labeling.
  struct Case {
    group::CayleyGraph cg;
    std::vector<graph::NodeId> agents;
  };
  const std::vector<Case> cases = {
      {group::cayley_ring(6), {0, 3}},
      {group::cayley_ring(6), {0, 2, 4}},
      {group::cayley_hypercube(2), {0, 3}},
      {group::cayley_torus(3, 3), {0, 4, 8}},
  };
  for (const auto& c : cases) {
    const Placement p(c.cg.graph.node_count(), c.agents);
    const MarkingResult res = theorem41_marking(c.cg, p);
    auto expected = views::label_equivalence_classes(
        c.cg.graph, p, c.cg.natural_labeling());
    for (auto& cls : expected) std::sort(cls.begin(), cls.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(res.final_classes, expected);
    EXPECT_GT(res.final_class_size, 1u);
  }
}

TEST(Marking, TrivialStabilizerEndsWithSingletons) {
  const group::CayleyGraph cg = group::cayley_ring(5);
  const Placement p(5, {0, 1});
  const MarkingResult res = theorem41_marking(cg, p);
  EXPECT_EQ(res.final_class_size, 1u);
  EXPECT_EQ(res.final_classes.size(), 5u);
}

TEST(Marking, StepSizesFollowEuclid) {
  // Each step splits a class into (|A|, |C'|-|A|); gcd preserved is checked
  // internally by the implementation, so surviving without CheckError on a
  // spread of instances is itself the assertion.  Verify the step counts
  // are bounded by n - 1.
  const group::CayleyGraph cg = group::cayley_torus(3, 4);
  for (const auto& agents :
       std::vector<std::vector<graph::NodeId>>{{0}, {0, 6}, {0, 1, 2}}) {
    const Placement p(12, agents);
    const MarkingResult res = theorem41_marking(cg, p);
    EXPECT_LE(res.steps.size(), cg.graph.node_count() - 1);
  }
}

}  // namespace
}  // namespace qelect::cayley
