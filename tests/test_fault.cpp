// The fault subsystem (src/fault): determinism, replay, and diagnosis.
//
// The whole contract of fault injection here is that faults are just
// another deterministic input: every draw is Philox-keyed by
// (fault_seed, axis, event index), every injected fault consumes exactly
// one scheduler pick and emits exactly one trace event, so a faulty run
// records, replays, and diagnoses identically forever.  These tests pin
// that down axis by axis, plus the zero-plan escape hatch: a FaultPlan
// with every rate zero must be observationally byte-identical to running
// with no plan at all (the golden-sim digests depend on it).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "qelect/campaign/task.hpp"
#include "qelect/campaign/workloads.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/fault/diagnosis.hpp"
#include "qelect/fault/injector.hpp"
#include "qelect/fault/plan.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/graph/placement.hpp"
#include "qelect/sim/message_world.hpp"
#include "qelect/sim/replay.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/trace/invariants.hpp"
#include "qelect/trace/sink.hpp"
#include "qelect/util/rng.hpp"

namespace qelect {
namespace {

using graph::Graph;
using graph::Placement;

// ---- injector primitives ------------------------------------------------

TEST(FaultInjector, NullAndZeroPlansNeverFire) {
  fault::FaultInjector inert(nullptr);
  fault::FaultPlan zero;
  fault::FaultInjector zeroed(&zero);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(inert.roll_crash());
    EXPECT_FALSE(inert.roll_msg_loss());
    EXPECT_FALSE(zeroed.roll_crash());
    EXPECT_FALSE(zeroed.roll_sign_loss());
    EXPECT_FALSE(zeroed.roll_edge_cut());
  }
  EXPECT_FALSE(zero.enabled());
}

TEST(FaultInjector, RateOneAlwaysFires) {
  fault::FaultPlan plan;
  plan.fault_seed = 7;
  plan.crash_rate = 1.0;
  fault::FaultInjector injector(&plan);
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(injector.roll_crash());
}

TEST(FaultInjector, DrawsArePhiloxKeyedByAxisAndIndex) {
  // The seeding contract from the issue: draw k of axis a is
  // Philox4x32::block(fault_seed, a, k) compared against rate * 2^64.
  fault::FaultPlan plan;
  plan.fault_seed = 0x5eedf00dULL;
  plan.crash_rate = 0.5;
  plan.edge_cut_rate = 0.25;
  fault::FaultInjector injector(&plan);
  const auto expect_roll = [&](fault::FaultAxis axis, double rate,
                               std::uint64_t k) {
    const auto thr = static_cast<std::uint64_t>(
        rate * 18446744073709551616.0);  // 2^64
    return Philox4x32::block(plan.fault_seed,
                             static_cast<std::uint64_t>(axis), k) < thr;
  };
  for (std::uint64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(injector.roll_crash(),
              expect_roll(fault::FaultAxis::Crash, plan.crash_rate, k))
        << "crash draw " << k;
  }
  // The edge axis has its own counter: interleaving crash draws above must
  // not have advanced it.
  for (std::uint64_t k = 0; k < 256; ++k) {
    EXPECT_EQ(injector.roll_edge_cut(),
              expect_roll(fault::FaultAxis::Edge, plan.edge_cut_rate, k))
        << "edge draw " << k;
  }
}

TEST(FaultInjector, RecordsSummaryAndFirstEvent) {
  fault::FaultPlan plan;
  plan.crash_rate = 1.0;
  fault::FaultInjector injector(&plan);
  injector.record(10, 1, fault::FaultKind::AgentCrash, 3);
  injector.record(20, 0, fault::FaultKind::SignLost, 4);
  const fault::FaultSummary s = injector.summary();
  EXPECT_EQ(s.total, 2u);
  EXPECT_TRUE(s.any);
  EXPECT_EQ(s.first.kind, fault::FaultKind::AgentCrash);
  EXPECT_EQ(s.first.step, 10u);
  EXPECT_EQ(s.by_axis(fault::FaultAxis::Crash), 1u);
  EXPECT_EQ(s.by_axis(fault::FaultAxis::Board), 1u);
  EXPECT_EQ(s.by_axis(fault::FaultAxis::Message), 0u);
  ASSERT_EQ(injector.events().size(), 2u);
}

// ---- zero-plan byte identity --------------------------------------------

struct Observed {
  std::vector<trace::TraceEvent> events;
  sim::RunResult result;
  // Board corruption can legitimately trip ELECT's internal QELECT_CHECKs
  // (the protocol detecting an inconsistent whiteboard); the campaign
  // engine records that as a failed task.  Determinism then means the
  // *same* throw at the same point, so the error is part of the
  // observation.
  std::string error;
};

Observed traced_world_run(const Graph& g, const Placement& p,
                          std::uint64_t color_seed, sim::RunConfig config) {
  trace::VectorSink sink;
  config.sink = &sink;
  sim::World w(g, p, color_seed);
  Observed obs;
  try {
    obs.result = w.run(core::make_elect_protocol(), config);
  } catch (const std::exception& e) {
    obs.error = e.what();
  }
  obs.events = sink.events();
  return obs;
}

TEST(ZeroFaultPlan, WorldRunIsByteIdenticalToNoPlan) {
  const Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  sim::RunConfig config;
  config.seed = 5;

  const Observed bare = traced_world_run(g, p, 11, config);

  fault::FaultPlan zero;  // all rates zero: must route to the fault-free path
  config.faults = &zero;
  const Observed gated = traced_world_run(g, p, 11, config);

  EXPECT_EQ(bare.events, gated.events);
  EXPECT_EQ(bare.result.agents, gated.result.agents);
  EXPECT_EQ(bare.result.steps, gated.result.steps);
  EXPECT_EQ(bare.result.total_moves, gated.result.total_moves);
  EXPECT_EQ(bare.result.fault_summary, gated.result.fault_summary);
  EXPECT_TRUE(gated.result.fault_events.empty());
  EXPECT_EQ(gated.result.crashed_count(), 0u);
}

TEST(ZeroFaultPlan, MessageWorldRunIsByteIdenticalToNoPlan) {
  const Graph g = graph::ring(4);
  const Placement p(4, {0, 2});
  sim::RunConfig config;
  config.seed = 3;

  auto run_message = [&](const sim::RunConfig& c) {
    trace::VectorSink sink;
    sim::RunConfig with_sink = c;
    with_sink.sink = &sink;
    sim::MessageWorld w(g, p, 13);
    Observed obs;
    obs.result = w.run(core::make_elect_protocol(), with_sink);
    obs.events = sink.events();
    return obs;
  };

  const Observed bare = run_message(config);
  fault::FaultPlan zero;
  config.faults = &zero;
  const Observed gated = run_message(config);
  EXPECT_EQ(bare.events, gated.events);
  EXPECT_EQ(bare.result.agents, gated.result.agents);
  EXPECT_EQ(bare.result.steps, gated.result.steps);
}

// ---- per-axis determinism -----------------------------------------------

fault::FaultPlan axis_plan(fault::FaultAxis axis, double rate) {
  fault::FaultPlan plan;
  plan.fault_seed = 0xfa017ULL;
  switch (axis) {
    case fault::FaultAxis::Crash:
      plan.crash_rate = rate;
      break;
    case fault::FaultAxis::Board:
      plan.sign_loss_rate = rate;
      plan.sign_dup_rate = rate;
      break;
    case fault::FaultAxis::Message:
      plan.msg_loss_rate = rate;
      plan.msg_dup_rate = rate;
      plan.msg_delay_rate = rate;
      break;
    case fault::FaultAxis::Edge:
      plan.edge_cut_rate = rate;
      plan.edge_wormhole_rate = rate / 2;
      break;
  }
  return plan;
}

TEST(FaultedRuns, WorldAxesAreDeterministic) {
  const Graph g = graph::ring(8);
  const Placement p(8, {0, 4});
  for (const fault::FaultAxis axis :
       {fault::FaultAxis::Crash, fault::FaultAxis::Board,
        fault::FaultAxis::Edge}) {
    SCOPED_TRACE(fault::axis_name(axis));
    const fault::FaultPlan plan = axis_plan(axis, 0.05);
    sim::RunConfig config;
    config.seed = 9;
    config.faults = &plan;
    const Observed a = traced_world_run(g, p, 21, config);
    const Observed b = traced_world_run(g, p, 21, config);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.result.agents, b.result.agents);
    EXPECT_EQ(a.result.fault_summary, b.result.fault_summary);
    EXPECT_EQ(a.result.fault_events, b.result.fault_events);
  }
}

TEST(FaultedRuns, MessageAxesAreDeterministic) {
  const Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  const fault::FaultPlan plan = axis_plan(fault::FaultAxis::Message, 0.05);
  sim::RunConfig config;
  config.seed = 4;
  config.faults = &plan;

  auto run_once = [&] {
    trace::VectorSink sink;
    sim::RunConfig c = config;
    c.sink = &sink;
    sim::MessageWorld w(g, p, 17);
    Observed obs;
    obs.result = w.run(core::make_elect_protocol(), c);
    obs.events = sink.events();
    return obs;
  };
  const Observed a = run_once();
  const Observed b = run_once();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.result.agents, b.result.agents);
  EXPECT_EQ(a.result.fault_events, b.result.fault_events);
}

TEST(FaultedRuns, HighCrashRateCrashStopsAgents) {
  const Graph g = graph::ring(6);
  const Placement p(6, {0, 2, 4});
  fault::FaultPlan plan;
  plan.fault_seed = 2;
  plan.crash_rate = 0.5;
  sim::RunConfig config;
  config.seed = 1;
  config.faults = &plan;
  const Observed obs = traced_world_run(g, p, 5, config);
  EXPECT_GT(obs.result.crashed_count(), 0u);
  for (const auto& a : obs.result.agents) {
    if (a.status != sim::AgentStatus::Crashed) continue;
    // A crash-stopped agent's last trace event can't postdate the crash.
    EXPECT_TRUE(obs.result.fault_summary.any);
  }
}

// ---- replay-under-faults (the satellite determinism suite) --------------

TEST(FaultReplay, RecordedFaultyRunReplaysByteIdentically) {
  const Graph g = graph::ring(8);
  const Placement p(8, {0, 4});
  fault::FaultPlan plan = axis_plan(fault::FaultAxis::Crash, 0.02);
  plan.edge_cut_rate = 0.02;
  plan.sign_loss_rate = 0.02;

  sim::RunConfig config;
  config.seed = 6;
  config.faults = &plan;
  trace::VectorSink recorded_events;
  config.sink = &recorded_events;

  sim::World w(g, p, 19);
  const sim::RecordedRun recorded =
      sim::record_run(w, core::make_elect_protocol(), config);

  // Replay must reproduce the run field-for-field -- including the fault
  // summary and the fault event log (compare_run_results covers both).
  sim::World replay_world(g, p, 19);
  const auto verification =
      sim::verify_replay(replay_world, core::make_elect_protocol(), config,
                         recorded.result, recorded.schedule);
  EXPECT_TRUE(verification.identical) << verification.divergence;

  // And the trace itself is byte-identical under replay.
  trace::VectorSink replayed_events;
  sim::RunConfig replay_config = config;
  replay_config.policy = sim::SchedulerPolicy::Replay;
  replay_config.replay = &recorded.schedule;
  replay_config.sink = &replayed_events;
  sim::World again(g, p, 19);
  const auto replayed =
      again.run(core::make_elect_protocol(), replay_config);
  EXPECT_EQ(recorded_events.events(), replayed_events.events());
  EXPECT_EQ(recorded.result.fault_events, replayed.fault_events);

  // The first-violation diagnosis is a pure function of (trace, fault
  // log), so record and replay agree on it too.
  trace::InvariantSpec spec;
  spec.graph = &g;
  spec.home_bases = p.home_bases();
  const auto report_a =
      trace::check_trace(recorded_events.events(), spec);
  const auto report_b =
      trace::check_trace(replayed_events.events(), spec);
  const auto fv_a =
      fault::diagnose_first_violation(report_a, recorded.result.fault_events);
  const auto fv_b =
      fault::diagnose_first_violation(report_b, replayed.fault_events);
  EXPECT_EQ(fv_a, fv_b);
}

TEST(FaultReplay, MessageWorldFaultyRunReplaysIdentically) {
  const Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  const fault::FaultPlan plan = axis_plan(fault::FaultAxis::Message, 0.04);
  sim::RunConfig config;
  config.seed = 8;
  config.faults = &plan;

  sim::MessageWorld w(g, p, 23);
  const sim::RecordedMessageRun recorded =
      sim::record_run(w, core::make_elect_protocol(), config);
  sim::MessageWorld replay_world(g, p, 23);
  const auto verification =
      sim::verify_replay(replay_world, core::make_elect_protocol(), config,
                         recorded.result, recorded.schedule);
  EXPECT_TRUE(verification.identical) << verification.divergence;
}

// ---- first-violation diagnosis ------------------------------------------

TEST(Diagnosis, AttributesViolationToLatestPrecedingFault) {
  trace::InvariantReport report;
  report.violations.push_back("bad move");
  report.details.push_back({true, 100, 1, "bad move"});
  std::vector<fault::FaultEvent> faults = {
      {50, 0, fault::FaultKind::EdgeCut, 2},
      {90, 1, fault::FaultKind::AgentCrash, 3},
      {120, 0, fault::FaultKind::SignLost, 1},  // after: not the cause
  };
  const auto fv = fault::diagnose_first_violation(report, faults);
  EXPECT_TRUE(fv.violated);
  EXPECT_TRUE(fv.caused_by_fault);
  EXPECT_EQ(fv.cause.kind, fault::FaultKind::AgentCrash);
  EXPECT_EQ(fv.cause.step, 90u);
  EXPECT_EQ(fv.step, 100u);
}

TEST(Diagnosis, ViolationWithoutFaultsIsUnattributed) {
  trace::InvariantReport report;
  report.violations.push_back("bad move");
  report.details.push_back({true, 7, 0, "bad move"});
  const auto fv = fault::diagnose_first_violation(report, {});
  EXPECT_TRUE(fv.violated);
  EXPECT_FALSE(fv.caused_by_fault);
}

TEST(Diagnosis, CleanReportDiagnosesOk) {
  trace::InvariantReport report;
  const auto fv = fault::diagnose_first_violation(
      report, {{5, 0, fault::FaultKind::AgentCrash, 0}});
  EXPECT_FALSE(fv.violated);
  EXPECT_EQ(fv.to_string(), "ok");
}

// ---- degradation workload determinism -----------------------------------

TEST(DegradationWorkload, TaskMetricsAreDeterministic) {
  campaign::TaskSpec task;
  task.key = "degradation/ring(6)/p=0.3/s=1/f=crash-0.05";
  task.workload = "degradation";
  task.graph = campaign::GraphRef{"ring", {6}};
  task.home_bases = {0, 3};
  task.color_seed = 1;
  task.fault_label = "crash-0.05";
  task.faults.crash_rate = 0.05;

  const CancelToken cancel;
  const auto a = campaign::run_task(task, cancel);
  const auto b = campaign::run_task(task, cancel);
  EXPECT_EQ(a, b);

  // A different key re-derives the per-task fault seed: same rates, a
  // different Philox stream (almost surely different metrics; the point
  // here is just that the derivation depends on the key).
  campaign::TaskSpec other = task;
  other.key = "degradation/ring(6)/p=0.3/s=2/f=crash-0.05";
  other.color_seed = 2;
  const auto c = campaign::run_task(other, cancel);
  EXPECT_EQ(c.size(), a.size());
}

}  // namespace
}  // namespace qelect
