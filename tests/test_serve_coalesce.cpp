// Micro-batching tests: the ElectBatchPlanCache unit surface (including a
// TSan thread hammer), byte-identity of Service::run_elect_coalesced
// against the uncoalesced handle() path, and end-to-end coalescing over
// loopback -- cross-connection bursts landing in one slab, mixed-instance
// bursts splitting into distinct slabs, window=0 bypass, FIFO response
// ordering past a parked request, and the steady-state plan-cache hit
// rate the acceptance criteria pin.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "qelect/campaign/task.hpp"
#include "qelect/core/elect_batch_cache.hpp"
#include "qelect/graph/placement.hpp"
#include "qelect/serve/client.hpp"
#include "qelect/serve/server.hpp"
#include "qelect/serve/service.hpp"
#include "qelect/util/assert.hpp"

namespace qelect::serve {
namespace {

struct Built {
  graph::Graph g;
  graph::Placement p;
};

Built build(const std::string& family, std::vector<std::uint64_t> params,
            std::vector<graph::NodeId> bases) {
  campaign::GraphRef ref;
  ref.family = family;
  ref.params = std::move(params);
  graph::Graph g = ref.build();
  graph::Placement p(g.node_count(), std::move(bases));
  return {std::move(g), std::move(p)};
}

// ---- plan cache ----------------------------------------------------------

TEST(PlanCache, RepeatedStructureHits) {
  core::ElectBatchPlanCache cache(8);
  const Built a = build("ring", {6}, {0, 2});
  const auto first = cache.plan(a.g, a.p);
  const auto second = cache.plan(a.g, a.p);
  EXPECT_EQ(first.get(), second.get());  // shared, not recompiled
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.compiles, 1u);
  EXPECT_EQ(s.entries, 1u);

  // Same graph, different placement: a distinct plan.
  const Built b = build("ring", {6}, {0, 3});
  const auto other = cache.plan(b.g, b.p);
  EXPECT_NE(other.get(), first.get());
  EXPECT_EQ(cache.stats().entries, 2u);

  // A rebuilt copy of the first instance still hits: keys are structure,
  // not object identity.
  const Built a2 = build("ring", {6}, {0, 2});
  EXPECT_EQ(cache.plan(a2.g, a2.p).get(), first.get());
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  core::ElectBatchPlanCache cache(2);
  const Built a = build("ring", {4}, {0, 1});
  const Built b = build("ring", {5}, {0, 1});
  const Built c = build("ring", {6}, {0, 1});
  cache.plan(a.g, a.p);
  cache.plan(b.g, b.p);
  cache.plan(a.g, a.p);         // refresh a
  cache.plan(c.g, c.p);         // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.plan(a.g, a.p);
  EXPECT_EQ(cache.stats().hits, 2u);  // a still resident
  cache.plan(b.g, b.p);               // recompiles
  EXPECT_EQ(cache.stats().compiles, 4u);

  cache.set_capacity(1);
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

// Many threads sharing one cache over a handful of structures: exercised
// under TSan in CI.  Every returned plan for one structure must be the
// same object once the cold races settle, and final_gcd must be right.
TEST(PlanCache, ConcurrentLookupsAreSafe) {
  core::ElectBatchPlanCache cache(8);
  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Built sym = build("ring", {6}, {0, 3});   // gcd 2
      const Built asym = build("path", {5}, {0, 1});  // gcd 1
      for (int i = 0; i < kIters; ++i) {
        const auto& inst = (i + t) % 2 == 0 ? sym : asym;
        const auto plan = cache.plan(inst.g, inst.p);
        const std::uint64_t want = (i + t) % 2 == 0 ? 2u : 1u;
        if (plan == nullptr || plan->final_gcd != want) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, kThreads * kIters);
  EXPECT_EQ(s.entries, 2u);
}

// ---- coalesced execution vs handle() ------------------------------------

std::vector<std::uint8_t> handle_run_elect(Service& service,
                                           const RunElectRequest& req) {
  return service.handle(static_cast<std::uint16_t>(Opcode::kRunElect),
                        encode_run_elect_request(req));
}

// The tentpole identity: for every request in a coalesced group, the
// response bytes equal what the uncoalesced path produces.
TEST(Service, CoalescedResponsesAreByteIdentical) {
  Service service;
  const std::vector<InstanceRef> instances = {
      {"ring", {6}, {0, 3}},
      {"ring", {6}, {0, 2}},
      {"petersen", {}, {0, 1}},
      {"hypercube", {3}, {0, 7}},
  };
  const std::vector<std::string> schedulers = {"random", "round-robin",
                                               "lockstep", "counter"};
  for (const auto& inst : instances) {
    for (const auto& sched : schedulers) {
      std::vector<RunElectRequest> group;
      for (std::uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
        RunElectRequest req;
        req.instance = inst;
        req.seed = seed;
        req.scheduler = sched;
        ASSERT_TRUE(Service::coalescible(req));
        group.push_back(req);
      }
      const auto coalesced = service.run_elect_coalesced(group);
      ASSERT_EQ(coalesced.size(), group.size());
      for (std::size_t i = 0; i < group.size(); ++i) {
        EXPECT_EQ(coalesced[i], handle_run_elect(service, group[i]))
            << inst.family << " " << sched << " seed " << group[i].seed;
      }
    }
  }
}

// Validation failures coalesce too: the whole group shares the instance,
// so the error response must be the same bytes handle() produces.
TEST(Service, CoalescedErrorsAreByteIdentical) {
  Service service;
  RunElectRequest bad;
  bad.instance = {"no-such-family", {4}, {0}};
  bad.scheduler = "counter";
  const auto coalesced = service.run_elect_coalesced({bad, bad});
  ASSERT_EQ(coalesced.size(), 2u);
  const auto want = handle_run_elect(service, bad);
  EXPECT_EQ(coalesced[0], want);
  EXPECT_EQ(coalesced[1], want);
  WireReader r(want);
  EXPECT_EQ(r.u32(), kStatusBadRequest);

  RunElectRequest no_bases;
  no_bases.instance = {"ring", {6}, {}};
  const auto empty = service.run_elect_coalesced({no_bases});
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0], handle_run_elect(service, no_bases));
}

TEST(Service, CoalescibleGate) {
  RunElectRequest req;
  req.instance = {"ring", {6}, {0, 2}};
  EXPECT_TRUE(Service::coalescible(req));  // default random/1 replica
  req.scheduler = "counter";
  EXPECT_TRUE(Service::coalescible(req));
  req.replicas = 2;
  EXPECT_FALSE(Service::coalescible(req));  // burst requests keep their path
  req.replicas = 1;
  req.scheduler = "replay";
  EXPECT_FALSE(Service::coalescible(req));  // no batch parity, no coalescing
}

// ---- end-to-end coalescing over loopback ---------------------------------

std::uint64_t server_counter(Client& client, const std::string& key) {
  const auto resp = client.stats();
  EXPECT_EQ(resp.head.status, kStatusOk);
  for (const auto& [k, v] : resp.counters) {
    if (k == key) return v;
  }
  ADD_FAILURE() << "missing counter " << key;
  return 0;
}

// A cross-connection burst of distinct-seed RUN_ELECTs on one instance
// must coalesce into batch slabs and still answer every client with the
// exact uncoalesced bytes.
TEST(Server, CrossConnectionBurstCoalesces) {
  constexpr int kClients = 8;
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  // Window far above the burst's arrival jitter; the group usually fills
  // to coalesce_max and flushes early, the window is only the backstop.
  options.coalesce_window_us = 100'000;
  options.coalesce_max = kClients;
  Server server(options);
  server.start();

  Client probe = Client::connect("127.0.0.1", server.port());
  const std::uint64_t slabs0 = server_counter(probe, "coalesce_slabs");
  const std::uint64_t coalesced0 = server_counter(probe, "coalesce_requests");

  std::vector<std::vector<std::uint8_t>> responses(kClients);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      RunElectRequest req;
      req.instance = {"ring", {6}, {0, 2}};
      req.seed = 1000 + t;
      Client client = Client::connect("127.0.0.1", server.port());
      responses[t] =
          client.request(Opcode::kRunElect, encode_run_elect_request(req));
    });
  }
  for (auto& th : threads) th.join();

  Service oracle;
  for (int t = 0; t < kClients; ++t) {
    RunElectRequest req;
    req.instance = {"ring", {6}, {0, 2}};
    req.seed = 1000 + t;
    EXPECT_EQ(responses[t], handle_run_elect(oracle, req)) << "seed " << req.seed;
  }

  EXPECT_GE(server_counter(probe, "coalesce_slabs"), slabs0 + 1);
  EXPECT_EQ(server_counter(probe, "coalesce_requests"), coalesced0 + kClients);
  server.stop();
}

// Concurrent requests for two different instances must split into (at
// least) two slabs -- one per instance -- never mix.
TEST(Server, MixedInstanceBurstSplitsSlabs) {
  constexpr int kPerInstance = 4;
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  options.coalesce_window_us = 100'000;
  options.coalesce_max = kPerInstance;
  Server server(options);
  server.start();

  Client probe = Client::connect("127.0.0.1", server.port());
  const std::uint64_t slabs0 = server_counter(probe, "coalesce_slabs");

  const std::vector<InstanceRef> instances = {{"ring", {6}, {0, 3}},
                                              {"path", {5}, {0, 1}}};
  std::vector<std::vector<std::uint8_t>> responses(2 * kPerInstance);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2 * kPerInstance; ++t) {
    threads.emplace_back([&, t] {
      RunElectRequest req;
      req.instance = instances[t % 2];
      req.seed = 500 + t;
      Client client = Client::connect("127.0.0.1", server.port());
      responses[t] =
          client.request(Opcode::kRunElect, encode_run_elect_request(req));
    });
  }
  for (auto& th : threads) th.join();

  Service oracle;
  for (int t = 0; t < 2 * kPerInstance; ++t) {
    RunElectRequest req;
    req.instance = instances[t % 2];
    req.seed = 500 + t;
    EXPECT_EQ(responses[t], handle_run_elect(oracle, req)) << t;
  }
  // Distinct instances can never share a slab, so at least two ran.
  EXPECT_GE(server_counter(probe, "coalesce_slabs"), slabs0 + 2);
  server.stop();
}

// window=0 disables the coalescer entirely: responses stay identical and
// no slab counters move.
TEST(Server, WindowZeroBypassesCoalescer) {
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  options.coalesce_window_us = 0;
  Server server(options);
  server.start();

  Client probe = Client::connect("127.0.0.1", server.port());
  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint8_t>> responses(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      RunElectRequest req;
      req.instance = {"ring", {6}, {0, 2}};
      req.seed = 40 + t;
      Client client = Client::connect("127.0.0.1", server.port());
      responses[t] =
          client.request(Opcode::kRunElect, encode_run_elect_request(req));
    });
  }
  for (auto& th : threads) th.join();

  Service oracle;
  for (int t = 0; t < 4; ++t) {
    RunElectRequest req;
    req.instance = {"ring", {6}, {0, 2}};
    req.seed = 40 + t;
    EXPECT_EQ(responses[t], handle_run_elect(oracle, req)) << t;
  }
  EXPECT_EQ(server_counter(probe, "coalesce_slabs"), 0u);
  EXPECT_EQ(server_counter(probe, "coalesce_requests"), 0u);
  server.stop();
}

// A pipelined connection: a coalescible RUN_ELECT (parked for a window)
// followed immediately by a PING.  The PING computes first but must not
// overtake the parked request -- responses arrive in request order.
TEST(Server, ResponsesStayInRequestOrderPastAParkedRequest) {
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  options.coalesce_window_us = 20'000;
  options.coalesce_max = 64;  // never fills: flushes on the window
  Server server(options);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  RunElectRequest req;
  req.instance = {"ring", {6}, {0, 2}};
  req.seed = 77;
  std::vector<std::uint8_t> wire =
      encode_frame(Opcode::kRunElect, 1, encode_run_elect_request(req));
  const auto ping = encode_frame(Opcode::kPing, 2, {});
  wire.insert(wire.end(), ping.begin(), ping.end());
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  std::vector<std::uint64_t> order;
  std::vector<std::uint8_t> in;
  while (order.size() < 2) {
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    in.insert(in.end(), buf, buf + n);
    std::size_t offset = 0;
    while (true) {
      FrameHeader header;
      std::vector<std::uint8_t> payload;
      std::size_t consumed = 0;
      if (decode_frame(in.data() + offset, in.size() - offset, &header,
                       &payload, &consumed) != DecodeStatus::kOk) {
        break;
      }
      offset += consumed;
      order.push_back(header.request_id);
    }
    in.erase(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(offset));
  }
  ::close(fd);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2}));
  server.stop();
}

// Steady state: a stream of single-seed queries over one instance must be
// >90% plan-cache hits (the acceptance criterion), visible in STATS.
TEST(Server, SteadyStateBurstHitsPlanCache) {
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  options.coalesce_window_us = 2'000;
  Server server(options);
  server.start();

  Client client = Client::connect("127.0.0.1", server.port());
  const std::uint64_t hits0 = server_counter(client, "plan_cache_hits");
  const std::uint64_t misses0 = server_counter(client, "plan_cache_misses");

  // Distinct seeds defeat the response cache, so every request reaches
  // the coalescer and every (sequential) one becomes its own slab.
  constexpr int kRequests = 20;
  for (int i = 0; i < kRequests; ++i) {
    RunElectRequest req;
    req.instance = {"ring", {7}, {0, 2}};  // structure unique to this test
    req.seed = 9000 + i;
    const auto resp =
        client.request(Opcode::kRunElect, encode_run_elect_request(req));
    WireReader r(resp);
    ASSERT_EQ(r.u32(), kStatusOk);
  }

  const std::uint64_t hits = server_counter(client, "plan_cache_hits") - hits0;
  const std::uint64_t misses =
      server_counter(client, "plan_cache_misses") - misses0;
  ASSERT_EQ(hits + misses, kRequests);
  EXPECT_GE(hits, misses * 9);  // > 90% hit rate
  EXPECT_GE(server_counter(client, "coalesce_slabs"), kRequests);
  server.stop();
}

}  // namespace
}  // namespace qelect::serve
