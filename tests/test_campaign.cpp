// Campaign subsystem tests: deterministic expansion, spec round-trips, the
// result store as a crash-tolerant checkpoint, kill/resume logical
// identity (asserted over the JSONL export, which sorts by task_index --
// WAL bytes land in commit order and are not comparable across runs),
// fault isolation (injected failures, timeouts), and the Table 1 matrix
// agreeing with the directly computed verdicts.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "qelect/campaign/batch.hpp"
#include "qelect/campaign/builtin.hpp"
#include "qelect/campaign/engine.hpp"
#include "qelect/campaign/report.hpp"
#include "qelect/campaign/spec.hpp"
#include "qelect/campaign/store.hpp"
#include "qelect/campaign/task.hpp"
#include "qelect/campaign/workloads.hpp"
#include "qelect/core/analysis.hpp"
#include "qelect/core/baselines.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/graph/placement.hpp"
#include "qelect/trace/sink.hpp"
#include "qelect/util/assert.hpp"

namespace qelect::campaign {
namespace {

namespace fs = std::filesystem;

/// A fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path dir;
  explicit ScratchDir(const std::string& name)
      : dir(fs::temp_directory_path() /
            ("qelect_campaign_test_" + name +
             std::to_string(::getpid()))) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~ScratchDir() { fs::remove_all(dir); }
  std::string path(const std::string& file) const {
    return (dir / file).string();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The store's logical content: the JSONL export (header + records in
/// task_index order).  Two stores with the same export are the same
/// campaign state, whatever order their WAL frames landed in.
std::string export_of(const std::string& path) {
  return store_to_jsonl(load_store(path));
}

/// Byte offset just past the first `frames` WAL frames (the generation
/// header counts as one), for staging kill points at frame boundaries.
std::size_t wal_offset_after(const std::string& bytes, int frames) {
  std::size_t off = 4;  // magic
  for (int i = 0; i < frames; ++i) {
    std::uint32_t len = 0;
    std::memcpy(&len, bytes.data() + off, 4);
    off += 8 + len;
  }
  return off;
}

/// Small, fast live-protocol campaign: ELECT on rings n in [3, 6] with
/// every 1- and 2-agent placement (52 tasks).
CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "test-rings";
  spec.workload = "elect";
  spec.graphs.push_back({"ring", 3, 6, {}});
  spec.placements.mode = PlacementAxis::Mode::Enumerate;
  spec.placements.agents_min = 1;
  spec.placements.agents_max = 2;
  return spec;
}

TEST(CampaignSpec, JsonRoundTripIsExact) {
  CampaignSpec spec = small_spec();
  spec.color_seeds = {1, 9};
  spec.retries = 3;
  spec.timeout_seconds = 2.5;
  spec.inject = {"ring(4)", 1};
  const std::string json = spec.to_json();
  const CampaignSpec back = CampaignSpec::from_json_text(json);
  EXPECT_EQ(back, spec);
  EXPECT_EQ(back.to_json(), json);          // canonical form is a fixpoint
  EXPECT_EQ(back.spec_hash(), spec.spec_hash());
}

TEST(CampaignSpec, FaultsAxisRoundTripsAndEmptyPreservesHash) {
  // A fault-free spec must serialize without any "faults" key at all, so
  // stores written before the fault subsystem existed still hash-match.
  const CampaignSpec bare = small_spec();
  EXPECT_EQ(bare.to_json().find("faults"), std::string::npos);

  CampaignSpec spec = small_spec();
  spec.workload = "degradation";
  FaultPoint control;
  control.label = "none";
  FaultPoint crashy;
  crashy.label = "crash-0.01";
  crashy.plan.fault_seed = 7;
  crashy.plan.crash_rate = 0.01;
  crashy.plan.edge_wormhole_rate = 0.5;
  spec.faults = {control, crashy};
  const std::string json = spec.to_json();
  const CampaignSpec back = CampaignSpec::from_json_text(json);
  EXPECT_EQ(back, spec);
  EXPECT_EQ(back.to_json(), json);
  EXPECT_EQ(back.spec_hash(), spec.spec_hash());
  EXPECT_NE(back.spec_hash(), bare.spec_hash());
}

TEST(CampaignSpec, DegradationTasksCarryFaultKeySegments) {
  CampaignSpec spec = small_spec();
  spec.name = "deg";
  spec.workload = "degradation";
  FaultPoint control;
  control.label = "none";
  FaultPoint crashy;
  crashy.label = "crash-0.01";
  crashy.plan.crash_rate = 0.01;
  spec.faults = {control, crashy};
  const auto tasks = expand_tasks(spec);
  ASSERT_FALSE(tasks.empty());
  std::size_t with_control = 0, with_crashy = 0;
  for (const auto& t : tasks) {
    if (t.key.ends_with("/f=none")) ++with_control;
    if (t.key.ends_with("/f=crash-0.01")) ++with_crashy;
  }
  EXPECT_EQ(with_control + with_crashy, tasks.size());
  EXPECT_EQ(with_control, with_crashy);  // full grid per fault point

  // Degradation without a faults axis is a spec error, not a silent
  // fault-free sweep.
  CampaignSpec no_faults = spec;
  no_faults.faults.clear();
  EXPECT_THROW(expand_tasks(no_faults), CheckError);
}

TEST(CampaignReport, RejectsStoreWhoseSpecNoLongerMatchesTheBuiltin) {
  // A store written under an older definition of a built-in campaign must
  // make `qelect report` fail with a clear message (nonzero exit), not
  // mis-group records under the current definition.
  ScratchDir scratch("report_mismatch");
  const std::string path = scratch.path("stale.qws");
  CampaignSpec stale = builtin_spec("rings-smoke");
  stale.max_steps = 123456;  // "the catalog changed since"
  StoreHeader header;
  header.name = stale.name;
  header.spec_hash = stale.spec_hash();
  header.spec_json = stale.to_json();
  { StoreWriter writer(path, header); }
  try {
    print_report(path);
    FAIL() << "expected CheckError for a stale built-in store";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("no longer matches"),
              std::string::npos)
        << e.what();
  }
}

TEST(CampaignReport, RejectsStoreWithTamperedHeader) {
  ScratchDir scratch("report_tampered");
  const std::string path = scratch.path("tampered.qws");
  CampaignSpec spec = small_spec();
  StoreHeader header;
  header.name = spec.name;
  header.spec_hash = spec.spec_hash() ^ 1;  // header edited or corrupted
  header.spec_json = spec.to_json();
  { StoreWriter writer(path, header); }
  EXPECT_THROW(print_report(path), CheckError);
}

TEST(CampaignSpec, RejectsUnknownKeys) {
  EXPECT_THROW(CampaignSpec::from_json_text(
                   R"({"name":"x","workload":"elect","grpahs":[]})"),
               CheckError);
}

TEST(CampaignSpec, BuiltinsExpandAndHaveUniqueKeys) {
  for (const std::string& name : builtin_names()) {
    if (name == "landscape") continue;  // n=6 enumeration; covered by bench
    const CampaignSpec spec = builtin_spec(name);
    const auto tasks = expand_tasks(spec);
    EXPECT_FALSE(tasks.empty()) << name;
    std::set<std::string> keys;
    for (const auto& t : tasks) EXPECT_TRUE(keys.insert(t.key).second);
    // Determinism: a second expansion produces the identical key sequence.
    const auto again = expand_tasks(spec);
    ASSERT_EQ(again.size(), tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      EXPECT_EQ(again[i].key, tasks[i].key);
    }
  }
}

TEST(CampaignStore, ToleratesTornTailAndResumesOverIt) {
  ScratchDir scratch("torn");
  const std::string path = scratch.path("store.qws");
  const CampaignSpec spec = small_spec();
  EngineOptions opts;
  opts.deterministic = true;
  opts.shards = 2;
  run_campaign(spec, path, opts);
  const std::string clean = slurp(path);
  const std::string clean_export = export_of(path);

  // Tear the final frame mid-record, as a crash mid-write would.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << clean.substr(0, clean.size() - 17);
  }
  const LoadedStore torn = load_store(path);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.records.size(), expand_tasks(spec).size() - 1);

  // Resuming truncates the torn tail and re-runs exactly the lost task.
  const CampaignResult resumed = run_campaign(spec, path, opts);
  EXPECT_EQ(resumed.executed, 1u);
  EXPECT_EQ(resumed.skipped, resumed.total - 1);
  EXPECT_EQ(export_of(path), clean_export);
}

TEST(CampaignStore, RejectsMismatchedSpec) {
  ScratchDir scratch("mismatch");
  const std::string path = scratch.path("store.jsonl");
  run_campaign(small_spec(), path, {});
  CampaignSpec other = small_spec();
  other.color_seeds = {2};
  EXPECT_THROW(run_campaign(other, path, {}), CheckError);
}

TEST(CampaignEngine, KilledThenResumedStoreIsLogicallyIdentical) {
  ScratchDir scratch("resume");
  const std::string uninterrupted = scratch.path("full.qws");
  const std::string killed = scratch.path("killed.qws");
  const CampaignSpec spec = small_spec();
  EngineOptions opts;
  opts.deterministic = true;
  opts.shards = 4;

  const CampaignResult full = run_campaign(spec, uninterrupted, opts);
  EXPECT_TRUE(full.complete());
  EXPECT_EQ(full.failed + full.timeout, 0u);
  const std::string full_export = export_of(uninterrupted);

  // Simulated kill after 13 commits: commits land out of order, so the
  // surviving records are an arbitrary 13-task subset -- but each one must
  // equal its counterpart in the uninterrupted run exactly.
  EngineOptions kill = opts;
  kill.stop_after = 13;
  const CampaignResult partial = run_campaign(spec, killed, kill);
  EXPECT_TRUE(partial.stopped_early);
  EXPECT_EQ(partial.executed, 13u);
  const LoadedStore killed_store = load_store(killed);
  EXPECT_EQ(killed_store.records.size(), 13u);
  const LoadedStore full_store = load_store(uninterrupted);
  const auto full_by_key = full_store.by_key();
  for (const TaskRecord& r : killed_store.records) {
    const auto it = full_by_key.find(r.key);
    ASSERT_NE(it, full_by_key.end()) << r.key;
    EXPECT_EQ(r.to_json(), it->second->to_json());
    EXPECT_EQ(r.task_index, it->second->task_index);
  }

  // Resume: skips all 13 committed tasks, re-executes zero of them, and
  // the merged store exports byte-identically to the uninterrupted run.
  const CampaignResult resumed = run_campaign(spec, killed, opts);
  EXPECT_EQ(resumed.skipped, 13u);
  EXPECT_EQ(resumed.executed, resumed.total - 13);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.low_water, resumed.total);
  EXPECT_EQ(export_of(killed), full_export);

  // Resuming a complete store is a no-op that changes nothing.
  const CampaignResult noop = run_campaign(spec, killed, opts);
  EXPECT_EQ(noop.executed, 0u);
  EXPECT_EQ(noop.skipped, noop.total);
  EXPECT_EQ(export_of(killed), full_export);
}

TEST(CampaignEngine, TruncationAtFrameBoundaryResumesLogicallyIdentical) {
  ScratchDir scratch("truncate");
  const std::string path = scratch.path("store.qws");
  const CampaignSpec spec = small_spec();
  EngineOptions opts;
  opts.deterministic = true;
  opts.shards = 3;
  run_campaign(spec, path, opts);
  const std::string full_bytes = slurp(path);
  const std::string full_export = export_of(path);

  // Chop the store to the generation header + 7 records (a kill between
  // commits that happens to land on a frame boundary).
  const std::size_t pos = wal_offset_after(full_bytes, 1 + 7);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << full_bytes.substr(0, pos);
  }
  const CampaignResult resumed = run_campaign(spec, path, opts);
  EXPECT_EQ(resumed.skipped, 7u);
  EXPECT_EQ(resumed.executed, resumed.total - 7);
  EXPECT_EQ(export_of(path), full_export);
}

TEST(CampaignEngine, InjectedFailureIsRetriedThenSucceeds) {
  ScratchDir scratch("retry");
  CampaignSpec spec = small_spec();
  spec.inject = {"ring(5)/p=0.2/s=1", 1};  // first attempt throws
  spec.retries = 2;
  const CampaignResult result =
      run_campaign(spec, scratch.path("store.jsonl"), {});
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.retried, 1u);
  const auto store = load_store(scratch.path("store.jsonl"));
  const auto by_key = store.by_key();
  const auto* record = by_key.at("elect/ring(5)/p=0.2/s=1");
  EXPECT_EQ(record->outcome, "ok");
  EXPECT_EQ(record->attempts, 2);
}

TEST(CampaignEngine, ExhaustedRetriesRecordFailedWithoutPoisoningSiblings) {
  ScratchDir scratch("fail");
  CampaignSpec spec = small_spec();
  spec.inject = {"ring(4)", 100};  // every attempt throws, all ring(4) tasks
  spec.retries = 1;
  EngineOptions opts;
  opts.shards = 4;
  const CampaignResult result =
      run_campaign(spec, scratch.path("store.jsonl"), opts);
  EXPECT_TRUE(result.complete());
  EXPECT_GT(result.failed, 0u);
  const auto store = load_store(scratch.path("store.jsonl"));
  for (const TaskRecord& r : store.records) {
    if (r.key.find("ring(4)") != std::string::npos) {
      EXPECT_EQ(r.outcome, "failed");
      EXPECT_EQ(r.attempts, 2);  // 1 + retries
      EXPECT_NE(r.error.find("injected failure"), std::string::npos);
    } else {
      EXPECT_EQ(r.outcome, "ok") << r.key;
    }
  }
  // Failed records are terminal: resume re-executes nothing.
  const CampaignResult resumed =
      run_campaign(spec, scratch.path("store.jsonl"), opts);
  EXPECT_EQ(resumed.executed, 0u);
}

TEST(CampaignEngine, ExpiredDeadlineRecordsTimeout) {
  ScratchDir scratch("timeout");
  CampaignSpec spec = small_spec();
  spec.retries = 1;
  spec.timeout_seconds = 1e-9;  // expired before the first poll
  const CampaignResult result =
      run_campaign(spec, scratch.path("store.jsonl"), {});
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.timeout, result.total);
  const auto store = load_store(scratch.path("store.jsonl"));
  for (const TaskRecord& r : store.records) {
    EXPECT_EQ(r.outcome, "timeout");
    EXPECT_EQ(r.attempts, 2);
  }
}

TEST(CampaignEngine, ProgressStreamsThroughTraceSinks) {
  ScratchDir scratch("progress");
  const CampaignSpec spec = small_spec();
  trace::VectorSink sink;
  EngineOptions opts;
  opts.progress = &sink;
  opts.shards = 2;
  const CampaignResult result =
      run_campaign(spec, scratch.path("store.jsonl"), opts);
  EXPECT_EQ(sink.metadata().label, spec.name);
  EXPECT_EQ(sink.metadata().policy, "campaign");
  EXPECT_EQ(sink.metadata().node_count, result.total);
  ASSERT_EQ(sink.events().size(), result.executed);
  for (std::size_t i = 0; i < sink.events().size(); ++i) {
    EXPECT_EQ(sink.events()[i].step, i);  // commits arrive in order
    EXPECT_EQ(sink.events()[i].kind, trace::TraceEvent::Kind::TaskOk);
  }
  EXPECT_EQ(sink.summary().steps, result.executed);
  EXPECT_TRUE(sink.summary().completed);
}

TEST(CampaignTable1, MatrixMatchesDirectComputation) {
  ScratchDir scratch("table1");
  const std::string path = scratch.path("store.jsonl");
  const CampaignResult result =
      run_campaign(builtin_spec("table1"), path, {});
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.failed + result.timeout, 0u);
  const Table1Matrix m = table1_matrix(load_store(path));

  // The matrix cells the paper's Table 1 asserts, re-derived directly.
  EXPECT_TRUE(m.anon_holds);
  EXPECT_TRUE(m.k2_impossible);
  EXPECT_TRUE(m.qualitative_cayley_yes());
  EXPECT_TRUE(m.quantitative_yes());
  EXPECT_EQ(m.live_total, table1_instances().size());
  EXPECT_EQ(m.quant_total, table1_instances().size());
  EXPECT_TRUE(m.petersen_elect_fails);
  EXPECT_TRUE(m.petersen_adhoc_elects);
  EXPECT_EQ(m.petersen_gcd, 2u);
  EXPECT_EQ(m.missing, 0u);

  // Spot-check one cell against a direct oracle computation.
  const auto plan = core::protocol_plan(graph::complete(5),
                                        graph::Placement(5, {0, 1}));
  EXPECT_EQ(plan.final_gcd, 1u)
      << "K5{0,1} should be electable; matrix counted it live_ok";
}

TEST(CampaignWorkloads, AnalyzeClassifiesKnownInstances) {
  // C6 antipodal: the canonical Cayley-obstructed impossibility.
  TaskSpec task;
  task.key = "analyze/ring(6)/p=0.3/s=1";
  task.workload = "analyze";
  task.graph = {"ring", {6}};
  task.home_bases = {0, 3};
  TaskRecord record;
  record.metrics = run_task(task, {});
  EXPECT_GT(record.metric_or("final_gcd", 0), 1);
  EXPECT_EQ(record.metric_or("class", -1), kClassImpossCayley);

  // P3 end-to-end: asymmetric surroundings, gcd 1, electable.
  task.key = "analyze/path(3)/p=0.2/s=1";
  task.graph = {"path", {3}};
  task.home_bases = {0, 2};
  record.metrics = run_task(task, {});
  EXPECT_EQ(record.metric_or("class", -1), kClassElect);
}

TEST(CampaignSpec, BackendFieldRoundTripsAndDefaultPreservesHash) {
  // The backend axis must not disturb pre-existing spec hashes: a default
  // ("scalar") spec serializes without the key at all.
  CampaignSpec spec = small_spec();
  EXPECT_EQ(spec.to_json().find("backend"), std::string::npos);
  CampaignSpec batch = spec;
  batch.backend = "batch";
  EXPECT_NE(batch.to_json().find("\"backend\":\"batch\""),
            std::string::npos);
  EXPECT_NE(batch.spec_hash(), spec.spec_hash());
  const CampaignSpec back = CampaignSpec::from_json_text(batch.to_json());
  EXPECT_EQ(back, batch);
  EXPECT_THROW(CampaignSpec::from_json_text(
                   R"({"name":"x","workload":"elect","backend":"gpu"})"),
               CheckError);
}

TEST(CampaignSpec, CounterSchedulerRoundTrips) {
  CampaignSpec spec = small_spec();
  spec.scheduler = "counter";
  const CampaignSpec back = CampaignSpec::from_json_text(spec.to_json());
  EXPECT_EQ(back.scheduler, "counter");
  EXPECT_EQ(policy_from_name("counter"), sim::SchedulerPolicy::Counter);
}

TEST(CampaignEngine, BatchBackendStoreMatchesScalarByteForByte) {
  // The batch backend's defining guarantee: same tasks, same records.
  // Deterministic mode zeroes durations, so the exports must be identical
  // bytes -- across every scheduler the batch engine supports.
  for (const std::string scheduler :
       {"random", "round-robin", "lockstep", "counter"}) {
    ScratchDir scratch("batch_parity_" + scheduler);
    CampaignSpec spec = small_spec();
    spec.scheduler = scheduler;
    spec.color_seeds = {1, 7};
    EngineOptions options;
    options.deterministic = true;
    options.shards = 2;

    const std::string scalar_store = scratch.path("scalar.qws");
    run_campaign(spec, scalar_store, options);

    spec.backend = "batch";
    const std::string batch_store = scratch.path("batch.qws");
    const CampaignResult result = run_campaign(spec, batch_store, options);
    EXPECT_TRUE(result.complete()) << scheduler;
    EXPECT_EQ(result.failed, 0u) << scheduler;

    // Store headers differ (the batch spec embeds its backend); every
    // exported record line after the header must match exactly.
    const std::string scalar_text = export_of(scalar_store);
    const std::string batch_text = export_of(batch_store);
    EXPECT_EQ(scalar_text.substr(scalar_text.find('\n')),
              batch_text.substr(batch_text.find('\n')))
        << scheduler;
  }
}

TEST(CampaignEngine, BatchBackendKilledThenResumedIsLogicallyIdentical) {
  // Slab claiming must preserve the engine's crash contract: a stop_after
  // kill leaves a store holding exactly 5 records whose logical identity
  // matches the uninterrupted run, and resuming (which re-slabs only the
  // pending suffix) produces the identical export.
  ScratchDir scratch("batch_resume");
  CampaignSpec spec = small_spec();
  spec.backend = "batch";
  spec.color_seeds = {1, 7};
  EngineOptions options;
  options.deterministic = true;

  const std::string uninterrupted = scratch.path("full.qws");
  run_campaign(spec, uninterrupted, options);
  const std::string full_export = export_of(uninterrupted);

  const std::string killed = scratch.path("killed.qws");
  EngineOptions stop = options;
  stop.stop_after = 5;
  const CampaignResult partial = run_campaign(spec, killed, stop);
  EXPECT_TRUE(partial.stopped_early);
  const LoadedStore full_store = load_store(uninterrupted);
  const auto full_by_key = full_store.by_key();
  const LoadedStore killed_store = load_store(killed);
  for (const TaskRecord& r : killed_store.records) {
    const auto it = full_by_key.find(r.key);
    ASSERT_NE(it, full_by_key.end()) << r.key;
    EXPECT_EQ(r.to_json(), it->second->to_json());
  }

  const CampaignResult resumed = run_campaign(spec, killed, options);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(export_of(killed), full_export);
}

TEST(CampaignEngine, BatchStatsCountSlabsAndReplicas) {
  ScratchDir scratch("batch_stats");
  CampaignSpec spec = small_spec();  // 52 tasks over 26 instances
  spec.backend = "batch";
  spec.color_seeds = {1, 7};
  EngineOptions options;
  options.deterministic = true;
  BatchStats& stats = batch_stats();
  const std::uint64_t slabs0 = stats.slabs_run.load();
  const std::uint64_t replicas0 = stats.replicas_run.load();
  const CampaignResult result =
      run_campaign(spec, scratch.path("s.jsonl"), options);
  EXPECT_TRUE(result.complete());
  const std::uint64_t slabs = stats.slabs_run.load() - slabs0;
  const std::uint64_t replicas = stats.replicas_run.load() - replicas0;
  EXPECT_GT(slabs, 0u);
  EXPECT_EQ(replicas, result.executed);
  // Two color seeds per instance => every slab holds 2 replicas.
  EXPECT_EQ(replicas, slabs * 2);
  EXPECT_EQ(BatchStats::bucket_of(1), 0u);
  EXPECT_EQ(BatchStats::bucket_of(2), 1u);
  EXPECT_EQ(BatchStats::bucket_of(8), 3u);
  EXPECT_EQ(BatchStats::bucket_of(100), 5u);
}

TEST(CampaignEngine, BatchIneligibleSpecsFallBackToScalar) {
  // Fault injection forces the scalar path even under backend=batch: the
  // injected failure must still fire (slab execution would bypass it).
  ScratchDir scratch("batch_inject");
  CampaignSpec spec = small_spec();
  spec.backend = "batch";
  spec.inject = {"ring(4)", 1};
  spec.retries = 1;
  EngineOptions options;
  options.deterministic = true;
  const CampaignResult result =
      run_campaign(spec, scratch.path("s.jsonl"), options);
  EXPECT_TRUE(result.complete());
  EXPECT_GT(result.retried, 0u);
}

}  // namespace
}  // namespace qelect::campaign
