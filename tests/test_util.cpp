// Unit tests for the util module: PRNG determinism and distribution sanity,
// the Euclid dynamics of the reduction subroutines, and table rendering.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>

#include "qelect/util/assert.hpp"
#include "qelect/util/math.hpp"
#include "qelect/util/parallel.hpp"
#include "qelect/util/rng.hpp"
#include "qelect/util/table.hpp"

namespace qelect {
namespace {

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, Uniform01Bounds) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Xoshiro256 rng(11);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, BernoulliExtremes) {
  Xoshiro256 rng(5);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, PhiloxMatchesReferenceVectors) {
  // Random123 philox4x32 (10 rounds) known-answer vectors, packed as
  // x[1] << 32 | x[0] per our 64-bit output convention.
  // ctr {0,0,0,0}, key {0,0} -> x = {6627e8d5, e169c58d, ...}.
  EXPECT_EQ(Philox4x32::block(0, 0, 0), 0xe169c58d6627e8d5ull);
  // ctr {243f6a88, 85a308d3, 13198a2e, 03707344}, key {a4093822, 299f31d0}
  // (the pi-digits vector) -> x = {d16cfe09, 94fdcceb, ...}.
  EXPECT_EQ(Philox4x32::block(0x299f31d0a4093822ull, 0x0370734413198a2eull,
                              0x85a308d3243f6a88ull),
            0x94fdccebd16cfe09ull);
}

TEST(Rng, PhiloxPinnedOutputsAreStable) {
  // Regression pins: schedule reconstruction depends on these outputs
  // never changing (a counter draw is Philox(seed, replica).at(i)).
  EXPECT_EQ(Philox4x32::block(42, 7, 0), 0xe55410cc67ee6f2cull);
  EXPECT_EQ(Philox4x32::block(42, 7, 1), 0x600f6196e5dde940ull);
  EXPECT_EQ(Philox4x32::block(42, 8, 0), 0x1384733884d69b0cull);
  EXPECT_EQ(Philox4x32::block(43, 7, 0), 0xbb30ff3e1697d8f1ull);
  const Philox4x32 rng(42, 7);
  EXPECT_EQ(rng.at(0), Philox4x32::block(42, 7, 0));
  EXPECT_EQ(rng.at(1), Philox4x32::block(42, 7, 1));
}

TEST(Rng, PhiloxStreamsAreIndependent) {
  // Distinct (seed, stream) keys and distinct counters must give distinct
  // words; same key + counter must be reproducible from a fresh instance.
  std::set<std::uint64_t> words;
  for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
    for (std::uint64_t stream : {0ull, 1ull, 7ull}) {
      const Philox4x32 rng(seed, stream);
      for (std::uint64_t counter = 0; counter < 16; ++counter) {
        words.insert(rng.at(counter));
        EXPECT_EQ(rng.at(counter), Philox4x32(seed, stream).at(counter));
      }
    }
  }
  EXPECT_EQ(words.size(), 3u * 3u * 16u);
}

TEST(Rng, PhiloxBlockManyMatchesBlock) {
  // block_many must be bit-identical to n scalar block() calls for every
  // length (exercising the vector lanes and the scalar remainder) and for
  // counters with a nonzero high word.
  std::uint64_t out[37];
  for (std::size_t n = 0; n <= 37; ++n) {
    for (const std::uint64_t base :
         {0ull, 1ull, 0xfffffffdull, 0x123456789abcull}) {
      Philox4x32::block_many(42, 7, base, out, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], Philox4x32::block(42, 7, base + i))
            << "n=" << n << " base=" << base << " i=" << i;
      }
    }
  }
  // The known-answer vector must survive the batched path too.
  Philox4x32::block_many(0, 0, 0, out, 4);
  EXPECT_EQ(out[0], 0xe169c58d6627e8d5ull);
}

TEST(Rng, BoundedDrawIsInRangeAndReachesAllValues) {
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 10ull}) {
    std::set<std::uint64_t> seen;
    const Philox4x32 rng(123, 0);
    for (std::uint64_t c = 0; c < 512; ++c) {
      const std::uint64_t v = bounded_draw(rng.at(c), bound);
      ASSERT_LT(v, bound);
      seen.insert(v);
    }
    EXPECT_EQ(seen.size(), bound) << "bound " << bound;
  }
  // The mul-shift reduction is a fixed function of (word, bound).
  EXPECT_EQ(bounded_draw(0, 10), 0u);
  EXPECT_EQ(bounded_draw(0xffffffffffffffffull, 10), 9u);
}

TEST(Math, GcdAll) {
  EXPECT_EQ(gcd_all({12, 18, 24}), 6u);
  EXPECT_EQ(gcd_all({7}), 7u);
  EXPECT_EQ(gcd_all({5, 3}), 1u);
  EXPECT_THROW(gcd_all({}), CheckError);
  EXPECT_THROW(gcd_all({0}), CheckError);
}

TEST(Math, AgentReduceReachesGcd) {
  for (std::uint64_t a = 1; a <= 30; ++a) {
    for (std::uint64_t b = 1; b <= 30; ++b) {
      const auto traj = agent_reduce_trajectory(a, b);
      const std::uint64_t g = std::gcd(a, b);
      EXPECT_EQ(traj.back().searching, g);
      EXPECT_EQ(traj.back().waiting, g);
      // Every intermediate pair preserves the gcd (Euclid invariant).
      for (const auto& pair : traj) {
        EXPECT_EQ(std::gcd(pair.searching, pair.waiting), g);
        EXPECT_LE(pair.searching, pair.waiting);
      }
    }
  }
}

TEST(Math, AgentReduceFirstStepMatchesPaperRule) {
  // (s, w) -> (s, w-s) when w-s >= s.
  const auto traj = agent_reduce_trajectory(3, 10);
  ASSERT_GE(traj.size(), 2u);
  EXPECT_EQ(traj[0], (ReducePair{3, 10}));
  EXPECT_EQ(traj[1], (ReducePair{3, 7}));
  // (s, w) -> (w-s, s) when w-s < s.
  const auto traj2 = agent_reduce_trajectory(5, 8);
  EXPECT_EQ(traj2[1], (ReducePair{3, 5}));
}

TEST(Math, NodeReduceReachesGcd) {
  for (std::uint64_t a = 1; a <= 25; ++a) {
    for (std::uint64_t b = 1; b <= 25; ++b) {
      const auto traj = node_reduce_trajectory(a, b);
      const std::uint64_t g = std::gcd(a, b);
      EXPECT_EQ(traj.back().searching, g);
      EXPECT_EQ(traj.back().waiting, g);
      for (const auto& pair : traj) {
        EXPECT_EQ(std::gcd(pair.searching, pair.waiting), g);
      }
    }
  }
}

TEST(Math, NodeReduceHalvesEveryTwoRounds) {
  // The proof of Theorem 3.1: Cases 1 and 2 alternate, and the larger side
  // at least halves every two rounds, giving O(log) rounds.
  const auto traj = node_reduce_trajectory(1000, 1);
  EXPECT_LE(traj.size(), 3u);
  const auto traj2 = node_reduce_trajectory(610, 987);  // Fibonacci-ish
  for (std::size_t i = 2; i < traj2.size(); ++i) {
    const auto big = [&](std::size_t j) {
      return std::max(traj2[j].searching, traj2[j].waiting);
    };
    EXPECT_LE(big(i), big(i - 2) - big(i - 2) / 2 + 1);
  }
}

TEST(Math, RemainderInRange) {
  EXPECT_EQ(remainder_in_range(10, 5), 5u);  // exact multiples give m
  EXPECT_EQ(remainder_in_range(11, 5), 1u);
  EXPECT_EQ(remainder_in_range(4, 5), 4u);
  EXPECT_THROW(remainder_in_range(4, 0), CheckError);
}

TEST(Math, FibonacciWorstCaseForEuclid) {
  // gcd(F_n, F_{n+1}) takes ~n subtractive... the *remainder* form takes
  // n-2 steps; the subtractive form used by AGENT-REDUCE coincides with the
  // remainder form on Fibonacci pairs because each quotient is 1.
  EXPECT_EQ(fibonacci(10), 55u);
  EXPECT_EQ(fibonacci(0), 0u);
  EXPECT_EQ(fibonacci(1), 1u);
  const auto traj = agent_reduce_trajectory(fibonacci(14), fibonacci(15));
  EXPECT_EQ(traj.size(), 14u);
}

TEST(Math, Isqrt) {
  for (std::uint64_t n = 0; n < 1000; ++n) {
    const std::uint64_t r = isqrt(n);
    EXPECT_LE(r * r, n);
    EXPECT_GT((r + 1) * (r + 1), n);
  }
}

TEST(Math, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
}

TEST(Table, RendersAlignedColumns) {
  TextTable t("demo", {"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "100"});
  const std::string s = t.render();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_THROW(t.add_row({"only-one-cell"}), CheckError);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 1), "2.0");
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 0u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, threads);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, EmptyAndSingleton) {
  parallel_for(0, [](std::size_t) { FAIL(); }, 4);
  int calls = 0;
  parallel_for(1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; },
               8);
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, MapPreservesOrder) {
  const auto out = parallel_map<std::size_t>(
      100, [](std::size_t i) { return i * i; }, 3);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, DynamicCoversEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 0u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    parallel_for_dynamic(hits.size(), [&](std::size_t i) { ++hits[i]; },
                         threads);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, DynamicStopsClaimingAfterCancel) {
  CancelSource source;
  std::atomic<int> calls{0};
  parallel_for_dynamic(
      1000,
      [&](std::size_t) {
        if (calls.fetch_add(1) == 10) source.cancel();
      },
      4, source.token());
  // Once cancelled, no new index is claimed: far fewer than 1000 calls.
  EXPECT_GE(calls.load(), 11);
  EXPECT_LT(calls.load(), 1000);
}

TEST(Cancel, DefaultTokenNeverCancels) {
  const CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.throw_if_cancelled());
}

TEST(Cancel, ExplicitCancelTripsEveryToken) {
  CancelSource source;
  const CancelToken token = source.token();
  EXPECT_FALSE(token.cancelled());
  source.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.throw_if_cancelled(), Cancelled);
}

TEST(Cancel, DeadlineExpires) {
  const CancelSource none = CancelSource::with_timeout(0);
  EXPECT_FALSE(none.token().cancelled());
  const CancelSource expired = CancelSource::with_timeout(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(expired.token().cancelled());
  const CancelSource generous = CancelSource::with_timeout(3600);
  EXPECT_FALSE(generous.token().cancelled());
}

}  // namespace
}  // namespace qelect
