// Tests for surroundings, the protocol class plan, and the feasibility
// oracle -- Lemma 3.1, Theorem 2.1's application, and the corrected
// Theorem 4.1 verdict.
#include <gtest/gtest.h>

#include "qelect/util/assert.hpp"

#include "qelect/core/analysis.hpp"
#include "qelect/core/surrounding.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/iso/automorphism.hpp"
#include "qelect/iso/equivalence.hpp"

namespace qelect::core {
namespace {

using graph::Placement;

TEST(Surrounding, RootIsUniqueSource) {
  const graph::Graph g = graph::petersen();
  const Placement p(10, {0});
  for (NodeId u = 0; u < 10; ++u) {
    const auto s = surrounding(g, p, u);
    std::size_t sources = 0;
    for (NodeId x = 0; x < 10; ++x) {
      if (s.in_arcs(x).empty()) ++sources;
    }
    EXPECT_EQ(sources, 1u);
    EXPECT_TRUE(s.in_arcs(u).empty());
  }
}

TEST(Surrounding, EqualDistanceEdgesGetBothArcs) {
  // In C_3 from node 0, nodes 1 and 2 are both at distance 1, so the edge
  // {1, 2} yields arcs both ways in S(0).
  const graph::Graph g = graph::ring(3);
  const auto s = surrounding(g, Placement::empty(3), 0);
  bool a12 = false, a21 = false;
  for (const iso::Arc& arc : s.arcs()) {
    if (arc.from == 1 && arc.to == 2) a12 = true;
    if (arc.from == 2 && arc.to == 1) a21 = true;
  }
  EXPECT_TRUE(a12);
  EXPECT_TRUE(a21);
}

TEST(Surrounding, ClassesMatchAutomorphismOrbits) {
  // Lemma 3.1: u ~ v iff S(u) iso S(v).  Cross-check the surroundings
  // partition against orbits on assorted instances.
  const std::vector<std::pair<graph::Graph, Placement>> cases = {
      {graph::ring(6), Placement(6, {0, 3})},
      {graph::ring(7), Placement(7, {0, 1})},
      {graph::petersen(), Placement(10, {0, 1})},
      {graph::hypercube(3), Placement(8, {0, 7})},
      {graph::star(4), Placement(5, {0, 2})},
      {graph::torus({3, 3}), Placement(9, {0})},
  };
  for (const auto& [g, p] : cases) {
    auto surr = surrounding_classes(g, p).classes;
    auto orbits =
        iso::automorphism_orbits(iso::from_bicolored_graph(g, p));
    std::sort(surr.begin(), surr.end());
    std::sort(orbits.begin(), orbits.end());
    EXPECT_EQ(surr, orbits) << g.describe();
  }
}

TEST(Plan, BlackClassesComeFirst) {
  const graph::Graph g = graph::ring(6);
  const Placement p(6, {0, 3});
  const ProtocolClassPlan plan = protocol_plan(g, p);
  ASSERT_EQ(plan.ell, 1u);
  EXPECT_EQ(plan.classes[0], (std::vector<NodeId>{0, 3}));
  // Whites: {1,2,4,5} as one class (rotation+reflection orbit).
  EXPECT_EQ(plan.classes.size(), 2u);
  EXPECT_EQ(plan.sizes, (std::vector<std::uint64_t>{2, 4}));
  EXPECT_EQ(plan.final_gcd, 2u);
  EXPECT_FALSE(plan.d.empty());
  EXPECT_EQ(plan.d.back(), 2u);
}

TEST(Plan, GcdCascade) {
  // C_6 with agents {0, 2}: reflection through node 1 stabilizes the
  // placement, so blacks {0,2} form one class and whites split.
  const graph::Graph g = graph::ring(6);
  const Placement p(6, {0, 2});
  const ProtocolClassPlan plan = protocol_plan(g, p);
  EXPECT_EQ(plan.ell, 1u);
  EXPECT_EQ(plan.final_gcd, 1u);
  EXPECT_GE(plan.phases_executed(), 1u);
}

TEST(Plan, SingleAgentExecutesZeroPhases) {
  const graph::Graph g = graph::hypercube(3);
  const Placement p(8, {5});
  const ProtocolClassPlan plan = protocol_plan(g, p);
  EXPECT_EQ(plan.sizes.front(), 1u);
  EXPECT_EQ(plan.phases_executed(), 0u);
  EXPECT_EQ(plan.final_gcd, 1u);
}

TEST(Plan, RequiresAgents) {
  EXPECT_THROW(protocol_plan(graph::ring(4), Placement::empty(4)),
               qelect::CheckError);
}

TEST(Analyze, PossibleWhenGcd1) {
  const FeasibilityReport r =
      analyze(graph::ring(6), Placement(6, {0, 2}));
  EXPECT_TRUE(r.elect_succeeds);
  EXPECT_EQ(r.verdict, Verdict::Possible);
  EXPECT_EQ(r.verdict_string(), "possible");
}

TEST(Analyze, CayleyImpossibleWhenObstructed) {
  const FeasibilityReport r =
      analyze(graph::ring(6), Placement(6, {0, 3}));
  EXPECT_FALSE(r.elect_succeeds);
  EXPECT_TRUE(r.is_cayley);
  EXPECT_GT(r.translation_obstruction, 1u);
  EXPECT_EQ(r.verdict, Verdict::Impossible);
}

TEST(Analyze, GapInstanceRuledImpossibleByCorrectedTest) {
  // (C_4, {0,1}): single-group reading of Theorem 4.1 would wrongly say
  // possible; the all-subgroups test finds the Z_2 x Z_2 obstruction.
  const FeasibilityReport r = analyze(graph::ring(4), Placement(4, {0, 1}));
  EXPECT_FALSE(r.elect_succeeds);
  EXPECT_EQ(r.translation_obstruction, 2u);
  EXPECT_EQ(r.verdict, Verdict::Impossible);
  // Cross-check with the exhaustive Theorem 2.1 search.
  EXPECT_TRUE(impossibility_by_exhaustive_labelings(graph::ring(4),
                                                    Placement(4, {0, 1}), 2));
}

TEST(Analyze, PetersenPairIsUnknown) {
  // gcd = 2 but no regular subgroup exists: neither proof applies (and
  // indeed the ad-hoc protocol elects) -- verdict Unknown.
  const FeasibilityReport r =
      analyze(graph::petersen(), Placement(10, {0, 5}));
  EXPECT_FALSE(r.elect_succeeds);
  EXPECT_FALSE(r.is_cayley);
  EXPECT_EQ(r.verdict, Verdict::Unknown);
  EXPECT_EQ(r.plan.final_gcd, 2u);
  EXPECT_EQ(r.plan.sizes, (std::vector<std::uint64_t>{2, 4, 4}));
}

TEST(Analyze, K2IsImpossible) {
  // The paper's opening counterexample: K_2 with both agents.
  const FeasibilityReport r =
      analyze(graph::complete(2), Placement(2, {0, 1}));
  EXPECT_FALSE(r.elect_succeeds);
  EXPECT_EQ(r.verdict, Verdict::Impossible);
}

TEST(Analyze, StarCenterTrivial) {
  const FeasibilityReport r = analyze(graph::star(4), Placement(5, {0}),
                                      /*check_cayley=*/false);
  EXPECT_TRUE(r.elect_succeeds);
  EXPECT_FALSE(r.cayley_checked);
}

TEST(Analyze, SkippingCayleyLeavesUnknown) {
  const FeasibilityReport r =
      analyze(graph::ring(6), Placement(6, {0, 3}), /*check_cayley=*/false);
  EXPECT_EQ(r.verdict, Verdict::Unknown);
}

TEST(Analyze, BatchMatchesSequential) {
  std::vector<InstanceSpec> batch;
  batch.push_back({graph::ring(6), Placement(6, {0, 2})});
  batch.push_back({graph::ring(6), Placement(6, {0, 3})});
  batch.push_back({graph::petersen(), Placement(10, {0, 5})});
  batch.push_back({graph::hypercube(3), Placement(8, {0, 7})});
  const auto reports = analyze_batch(batch, true, 2);
  ASSERT_EQ(reports.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto solo = analyze(batch[i].g, batch[i].p);
    EXPECT_EQ(reports[i].verdict, solo.verdict) << i;
    EXPECT_EQ(reports[i].plan.sizes, solo.plan.sizes) << i;
    EXPECT_EQ(reports[i].translation_obstruction,
              solo.translation_obstruction)
        << i;
  }
}

TEST(Analyze, ExhaustiveAlphabetUpgradesVerdict) {
  // P4 {0,3} has gcd 2 and is not Cayley (path), so the Cayley route says
  // Unknown -- the exhaustive labeling search proves impossibility.
  const graph::Graph g = graph::path(4);
  const Placement p(4, {0, 3});
  const auto open_verdict = analyze(g, p);
  EXPECT_EQ(open_verdict.verdict, Verdict::Unknown);
  const auto closed = analyze(g, p, true, /*exhaustive_alphabet=*/2);
  EXPECT_EQ(closed.verdict, Verdict::Impossible);
}

TEST(Analyze, ExhaustiveAlphabetLeavesTrulyOpenCasesOpen) {
  // The Petersen pair has singleton ~lab classes under every labeling;
  // sampling cannot prove impossibility (and the ad-hoc protocol in fact
  // elects).  With a tiny alphabet the search must not fire.
  // (Full enumeration of Petersen labelings is infeasible; we use a path
  // instance with gcd 2 yet... instead verify on C5 {0,1}: gcd 1 -> stays
  // Possible even with the exhaustive option.)
  const auto r = analyze(graph::ring(5), Placement(5, {0, 1}), true, 2);
  EXPECT_EQ(r.verdict, Verdict::Possible);
}

}  // namespace
}  // namespace qelect::core
