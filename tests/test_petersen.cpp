// Tests for the Petersen counterexample protocol (Section 4): it must
// elect on exactly the instances ELECT gives up on, across schedulers,
// seeds, and adversarial port numberings.
#include <gtest/gtest.h>

#include "qelect/util/assert.hpp"

#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/core/petersen.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/world.hpp"

namespace qelect::core {
namespace {

using graph::Placement;
using sim::RunConfig;
using sim::RunResult;
using sim::World;

TEST(Petersen, ElectsOnAdjacentPair) {
  const graph::Graph g = graph::petersen();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    World w(g, Placement(10, {0, 5}), seed);
    RunConfig cfg;
    cfg.seed = seed;
    const RunResult r = w.run(make_petersen_protocol(), cfg);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.clean_election());
  }
}

TEST(Petersen, WorksForEveryAdjacentPlacement) {
  const graph::Graph g = graph::petersen();
  for (const graph::Edge& e : g.edges()) {
    World w(g, Placement(10, {e.u, e.v}), 7);
    const RunResult r = w.run(make_petersen_protocol(), RunConfig{});
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.clean_election());
  }
}

TEST(Petersen, RobustToPortPermutations) {
  const graph::Graph g = graph::petersen();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const graph::Graph h =
        g.permute_ports(graph::random_port_permutations(g, seed));
    World w(h, Placement(10, {0, 5}), seed + 11);
    const RunResult r = w.run(make_petersen_protocol(), RunConfig{});
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.clean_election());
  }
}

TEST(Petersen, LockstepSchedulerStillElects) {
  // Even the synchronous adversary cannot prevent the acquire race from
  // crowning exactly one winner (mutual exclusion serializes the boards).
  World w(graph::petersen(), Placement(10, {1, 6}), 3);
  RunConfig cfg;
  cfg.policy = sim::SchedulerPolicy::Lockstep;
  const RunResult r = w.run(make_petersen_protocol(), cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.clean_election());
}

TEST(Petersen, ElectWouldHaveFailedHere) {
  // The same instance through ELECT: classes (2, 4, 4), gcd 2 => failure
  // report, demonstrating ELECT's non-effectualness outside Cayley graphs.
  const graph::Graph g = graph::petersen();
  const Placement p(10, {0, 5});
  EXPECT_EQ(protocol_plan(g, p).final_gcd, 2u);
  World w(g, p, 5);
  const RunResult r = w.run(make_elect_protocol(), RunConfig{});
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.clean_failure());
}

TEST(Petersen, RejectsNonAdjacentPlacement) {
  // Outer nodes 0 and 2 are non-adjacent.
  World w(graph::petersen(), Placement(10, {0, 2}), 1);
  EXPECT_THROW(w.run(make_petersen_protocol(), RunConfig{}), qelect::CheckError);
}

TEST(Petersen, RejectsWrongGraph) {
  World w(graph::ring(10), Placement(10, {0, 1}), 1);
  EXPECT_THROW(w.run(make_petersen_protocol(), RunConfig{}), qelect::CheckError);
}

TEST(Petersen, MarksLandOnDistinctNonAdjacentNodes) {
  // Structural invariant behind step 4 (girth 5): run and inspect boards.
  const graph::Graph g = graph::petersen();
  World w(g, Placement(10, {0, 5}), 13);
  const RunResult r = w.run(make_petersen_protocol(), RunConfig{});
  ASSERT_TRUE(r.clean_election());
  std::vector<graph::NodeId> marked;
  for (graph::NodeId v = 0; v < 10; ++v) {
    if (w.board_at(v).find_tag(kTagPetersenMark) != nullptr) {
      marked.push_back(v);
    }
  }
  ASSERT_EQ(marked.size(), 2u);
  // Marked nodes are non-adjacent.
  for (graph::PortId p = 0; p < 3; ++p) {
    EXPECT_NE(g.peer(marked[0], p).to, marked[1]);
  }
  // Exactly one winner sign exists, on the common neighbor.
  std::size_t winner_boards = 0;
  for (graph::NodeId v = 0; v < 10; ++v) {
    winner_boards += w.board_at(v).count_tag(kTagPetersenWin);
  }
  EXPECT_EQ(winner_boards, 1u);
}

}  // namespace
}  // namespace qelect::core
