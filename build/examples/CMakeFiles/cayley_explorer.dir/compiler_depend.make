# Empty compiler generated dependencies file for cayley_explorer.
# This may be replaced when dependencies are built.
