file(REMOVE_RECURSE
  "CMakeFiles/cayley_explorer.dir/cayley_explorer.cpp.o"
  "CMakeFiles/cayley_explorer.dir/cayley_explorer.cpp.o.d"
  "cayley_explorer"
  "cayley_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cayley_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
