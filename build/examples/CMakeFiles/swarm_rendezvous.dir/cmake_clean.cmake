file(REMOVE_RECURSE
  "CMakeFiles/swarm_rendezvous.dir/swarm_rendezvous.cpp.o"
  "CMakeFiles/swarm_rendezvous.dir/swarm_rendezvous.cpp.o.d"
  "swarm_rendezvous"
  "swarm_rendezvous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_rendezvous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
