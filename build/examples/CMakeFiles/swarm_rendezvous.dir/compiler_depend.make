# Empty compiler generated dependencies file for swarm_rendezvous.
# This may be replaced when dependencies are built.
