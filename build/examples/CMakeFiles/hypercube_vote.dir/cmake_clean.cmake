file(REMOVE_RECURSE
  "CMakeFiles/hypercube_vote.dir/hypercube_vote.cpp.o"
  "CMakeFiles/hypercube_vote.dir/hypercube_vote.cpp.o.d"
  "hypercube_vote"
  "hypercube_vote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercube_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
