# Empty dependencies file for hypercube_vote.
# This may be replaced when dependencies are built.
