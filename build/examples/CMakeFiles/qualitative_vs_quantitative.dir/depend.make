# Empty dependencies file for qualitative_vs_quantitative.
# This may be replaced when dependencies are built.
