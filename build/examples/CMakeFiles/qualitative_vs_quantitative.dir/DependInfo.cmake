
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/qualitative_vs_quantitative.cpp" "examples/CMakeFiles/qualitative_vs_quantitative.dir/qualitative_vs_quantitative.cpp.o" "gcc" "examples/CMakeFiles/qualitative_vs_quantitative.dir/qualitative_vs_quantitative.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qelect_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cayley/CMakeFiles/qelect_cayley.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/qelect_views.dir/DependInfo.cmake"
  "/root/repo/build/src/iso/CMakeFiles/qelect_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/qelect_group.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qelect_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qelect_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qelect_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
