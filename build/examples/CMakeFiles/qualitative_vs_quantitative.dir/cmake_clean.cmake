file(REMOVE_RECURSE
  "CMakeFiles/qualitative_vs_quantitative.dir/qualitative_vs_quantitative.cpp.o"
  "CMakeFiles/qualitative_vs_quantitative.dir/qualitative_vs_quantitative.cpp.o.d"
  "qualitative_vs_quantitative"
  "qualitative_vs_quantitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qualitative_vs_quantitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
