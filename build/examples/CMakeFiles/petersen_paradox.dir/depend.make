# Empty dependencies file for petersen_paradox.
# This may be replaced when dependencies are built.
