file(REMOVE_RECURSE
  "CMakeFiles/petersen_paradox.dir/petersen_paradox.cpp.o"
  "CMakeFiles/petersen_paradox.dir/petersen_paradox.cpp.o.d"
  "petersen_paradox"
  "petersen_paradox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/petersen_paradox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
