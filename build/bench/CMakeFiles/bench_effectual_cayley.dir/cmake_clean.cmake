file(REMOVE_RECURSE
  "CMakeFiles/bench_effectual_cayley.dir/bench_effectual_cayley.cpp.o"
  "CMakeFiles/bench_effectual_cayley.dir/bench_effectual_cayley.cpp.o.d"
  "bench_effectual_cayley"
  "bench_effectual_cayley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_effectual_cayley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
