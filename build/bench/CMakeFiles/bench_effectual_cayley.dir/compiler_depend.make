# Empty compiler generated dependencies file for bench_effectual_cayley.
# This may be replaced when dependencies are built.
