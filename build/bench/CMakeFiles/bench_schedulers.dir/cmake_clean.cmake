file(REMOVE_RECURSE
  "CMakeFiles/bench_schedulers.dir/bench_schedulers.cpp.o"
  "CMakeFiles/bench_schedulers.dir/bench_schedulers.cpp.o.d"
  "bench_schedulers"
  "bench_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
