# Empty compiler generated dependencies file for bench_fig2_views.
# This may be replaced when dependencies are built.
