file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_views.dir/bench_fig2_views.cpp.o"
  "CMakeFiles/bench_fig2_views.dir/bench_fig2_views.cpp.o.d"
  "bench_fig2_views"
  "bench_fig2_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
