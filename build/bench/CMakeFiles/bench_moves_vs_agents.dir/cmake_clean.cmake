file(REMOVE_RECURSE
  "CMakeFiles/bench_moves_vs_agents.dir/bench_moves_vs_agents.cpp.o"
  "CMakeFiles/bench_moves_vs_agents.dir/bench_moves_vs_agents.cpp.o.d"
  "bench_moves_vs_agents"
  "bench_moves_vs_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_moves_vs_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
