# Empty compiler generated dependencies file for bench_symmetricity.
# This may be replaced when dependencies are built.
