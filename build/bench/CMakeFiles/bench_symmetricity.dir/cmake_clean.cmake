file(REMOVE_RECURSE
  "CMakeFiles/bench_symmetricity.dir/bench_symmetricity.cpp.o"
  "CMakeFiles/bench_symmetricity.dir/bench_symmetricity.cpp.o.d"
  "bench_symmetricity"
  "bench_symmetricity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symmetricity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
