file(REMOVE_RECURSE
  "CMakeFiles/bench_canon.dir/bench_canon.cpp.o"
  "CMakeFiles/bench_canon.dir/bench_canon.cpp.o.d"
  "bench_canon"
  "bench_canon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_canon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
