# Empty dependencies file for bench_canon.
# This may be replaced when dependencies are built.
