file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_petersen.dir/bench_fig5_petersen.cpp.o"
  "CMakeFiles/bench_fig5_petersen.dir/bench_fig5_petersen.cpp.o.d"
  "bench_fig5_petersen"
  "bench_fig5_petersen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_petersen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
