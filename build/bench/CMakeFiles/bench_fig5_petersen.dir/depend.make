# Empty dependencies file for bench_fig5_petersen.
# This may be replaced when dependencies are built.
