file(REMOVE_RECURSE
  "CMakeFiles/bench_reduce_euclid.dir/bench_reduce_euclid.cpp.o"
  "CMakeFiles/bench_reduce_euclid.dir/bench_reduce_euclid.cpp.o.d"
  "bench_reduce_euclid"
  "bench_reduce_euclid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reduce_euclid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
