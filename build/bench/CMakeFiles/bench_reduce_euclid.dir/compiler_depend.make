# Empty compiler generated dependencies file for bench_reduce_euclid.
# This may be replaced when dependencies are built.
