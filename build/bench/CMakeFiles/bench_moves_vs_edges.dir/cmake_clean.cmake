file(REMOVE_RECURSE
  "CMakeFiles/bench_moves_vs_edges.dir/bench_moves_vs_edges.cpp.o"
  "CMakeFiles/bench_moves_vs_edges.dir/bench_moves_vs_edges.cpp.o.d"
  "bench_moves_vs_edges"
  "bench_moves_vs_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_moves_vs_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
