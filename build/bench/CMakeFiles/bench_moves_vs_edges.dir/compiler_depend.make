# Empty compiler generated dependencies file for bench_moves_vs_edges.
# This may be replaced when dependencies are built.
