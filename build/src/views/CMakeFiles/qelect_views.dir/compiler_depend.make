# Empty compiler generated dependencies file for qelect_views.
# This may be replaced when dependencies are built.
