file(REMOVE_RECURSE
  "libqelect_views.a"
)
