
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/views/src/symmetricity.cpp" "src/views/CMakeFiles/qelect_views.dir/src/symmetricity.cpp.o" "gcc" "src/views/CMakeFiles/qelect_views.dir/src/symmetricity.cpp.o.d"
  "/root/repo/src/views/src/views.cpp" "src/views/CMakeFiles/qelect_views.dir/src/views.cpp.o" "gcc" "src/views/CMakeFiles/qelect_views.dir/src/views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/iso/CMakeFiles/qelect_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qelect_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qelect_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
