file(REMOVE_RECURSE
  "CMakeFiles/qelect_views.dir/src/symmetricity.cpp.o"
  "CMakeFiles/qelect_views.dir/src/symmetricity.cpp.o.d"
  "CMakeFiles/qelect_views.dir/src/views.cpp.o"
  "CMakeFiles/qelect_views.dir/src/views.cpp.o.d"
  "libqelect_views.a"
  "libqelect_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
