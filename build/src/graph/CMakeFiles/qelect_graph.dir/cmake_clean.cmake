file(REMOVE_RECURSE
  "CMakeFiles/qelect_graph.dir/src/families.cpp.o"
  "CMakeFiles/qelect_graph.dir/src/families.cpp.o.d"
  "CMakeFiles/qelect_graph.dir/src/graph.cpp.o"
  "CMakeFiles/qelect_graph.dir/src/graph.cpp.o.d"
  "CMakeFiles/qelect_graph.dir/src/io.cpp.o"
  "CMakeFiles/qelect_graph.dir/src/io.cpp.o.d"
  "CMakeFiles/qelect_graph.dir/src/labeling.cpp.o"
  "CMakeFiles/qelect_graph.dir/src/labeling.cpp.o.d"
  "CMakeFiles/qelect_graph.dir/src/placement.cpp.o"
  "CMakeFiles/qelect_graph.dir/src/placement.cpp.o.d"
  "libqelect_graph.a"
  "libqelect_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
