file(REMOVE_RECURSE
  "libqelect_graph.a"
)
