# Empty dependencies file for qelect_graph.
# This may be replaced when dependencies are built.
