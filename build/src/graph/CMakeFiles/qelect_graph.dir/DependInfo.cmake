
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/src/families.cpp" "src/graph/CMakeFiles/qelect_graph.dir/src/families.cpp.o" "gcc" "src/graph/CMakeFiles/qelect_graph.dir/src/families.cpp.o.d"
  "/root/repo/src/graph/src/graph.cpp" "src/graph/CMakeFiles/qelect_graph.dir/src/graph.cpp.o" "gcc" "src/graph/CMakeFiles/qelect_graph.dir/src/graph.cpp.o.d"
  "/root/repo/src/graph/src/io.cpp" "src/graph/CMakeFiles/qelect_graph.dir/src/io.cpp.o" "gcc" "src/graph/CMakeFiles/qelect_graph.dir/src/io.cpp.o.d"
  "/root/repo/src/graph/src/labeling.cpp" "src/graph/CMakeFiles/qelect_graph.dir/src/labeling.cpp.o" "gcc" "src/graph/CMakeFiles/qelect_graph.dir/src/labeling.cpp.o.d"
  "/root/repo/src/graph/src/placement.cpp" "src/graph/CMakeFiles/qelect_graph.dir/src/placement.cpp.o" "gcc" "src/graph/CMakeFiles/qelect_graph.dir/src/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qelect_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
