# Empty dependencies file for qelect_group.
# This may be replaced when dependencies are built.
