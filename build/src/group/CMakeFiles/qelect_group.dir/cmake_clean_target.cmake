file(REMOVE_RECURSE
  "libqelect_group.a"
)
