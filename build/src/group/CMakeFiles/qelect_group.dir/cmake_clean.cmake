file(REMOVE_RECURSE
  "CMakeFiles/qelect_group.dir/src/cayley_graph.cpp.o"
  "CMakeFiles/qelect_group.dir/src/cayley_graph.cpp.o.d"
  "CMakeFiles/qelect_group.dir/src/group.cpp.o"
  "CMakeFiles/qelect_group.dir/src/group.cpp.o.d"
  "libqelect_group.a"
  "libqelect_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
