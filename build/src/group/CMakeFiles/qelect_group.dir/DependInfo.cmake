
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/group/src/cayley_graph.cpp" "src/group/CMakeFiles/qelect_group.dir/src/cayley_graph.cpp.o" "gcc" "src/group/CMakeFiles/qelect_group.dir/src/cayley_graph.cpp.o.d"
  "/root/repo/src/group/src/group.cpp" "src/group/CMakeFiles/qelect_group.dir/src/group.cpp.o" "gcc" "src/group/CMakeFiles/qelect_group.dir/src/group.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/qelect_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qelect_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
