file(REMOVE_RECURSE
  "libqelect_cayley.a"
)
