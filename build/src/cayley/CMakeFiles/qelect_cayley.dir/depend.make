# Empty dependencies file for qelect_cayley.
# This may be replaced when dependencies are built.
