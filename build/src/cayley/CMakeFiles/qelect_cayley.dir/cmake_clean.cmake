file(REMOVE_RECURSE
  "CMakeFiles/qelect_cayley.dir/src/marking.cpp.o"
  "CMakeFiles/qelect_cayley.dir/src/marking.cpp.o.d"
  "CMakeFiles/qelect_cayley.dir/src/recognition.cpp.o"
  "CMakeFiles/qelect_cayley.dir/src/recognition.cpp.o.d"
  "CMakeFiles/qelect_cayley.dir/src/translation.cpp.o"
  "CMakeFiles/qelect_cayley.dir/src/translation.cpp.o.d"
  "libqelect_cayley.a"
  "libqelect_cayley.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_cayley.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
