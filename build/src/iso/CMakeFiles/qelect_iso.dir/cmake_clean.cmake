file(REMOVE_RECURSE
  "CMakeFiles/qelect_iso.dir/src/automorphism.cpp.o"
  "CMakeFiles/qelect_iso.dir/src/automorphism.cpp.o.d"
  "CMakeFiles/qelect_iso.dir/src/canonical.cpp.o"
  "CMakeFiles/qelect_iso.dir/src/canonical.cpp.o.d"
  "CMakeFiles/qelect_iso.dir/src/colored_digraph.cpp.o"
  "CMakeFiles/qelect_iso.dir/src/colored_digraph.cpp.o.d"
  "CMakeFiles/qelect_iso.dir/src/enumerate.cpp.o"
  "CMakeFiles/qelect_iso.dir/src/enumerate.cpp.o.d"
  "CMakeFiles/qelect_iso.dir/src/equivalence.cpp.o"
  "CMakeFiles/qelect_iso.dir/src/equivalence.cpp.o.d"
  "CMakeFiles/qelect_iso.dir/src/refinement.cpp.o"
  "CMakeFiles/qelect_iso.dir/src/refinement.cpp.o.d"
  "libqelect_iso.a"
  "libqelect_iso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_iso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
