
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iso/src/automorphism.cpp" "src/iso/CMakeFiles/qelect_iso.dir/src/automorphism.cpp.o" "gcc" "src/iso/CMakeFiles/qelect_iso.dir/src/automorphism.cpp.o.d"
  "/root/repo/src/iso/src/canonical.cpp" "src/iso/CMakeFiles/qelect_iso.dir/src/canonical.cpp.o" "gcc" "src/iso/CMakeFiles/qelect_iso.dir/src/canonical.cpp.o.d"
  "/root/repo/src/iso/src/colored_digraph.cpp" "src/iso/CMakeFiles/qelect_iso.dir/src/colored_digraph.cpp.o" "gcc" "src/iso/CMakeFiles/qelect_iso.dir/src/colored_digraph.cpp.o.d"
  "/root/repo/src/iso/src/enumerate.cpp" "src/iso/CMakeFiles/qelect_iso.dir/src/enumerate.cpp.o" "gcc" "src/iso/CMakeFiles/qelect_iso.dir/src/enumerate.cpp.o.d"
  "/root/repo/src/iso/src/equivalence.cpp" "src/iso/CMakeFiles/qelect_iso.dir/src/equivalence.cpp.o" "gcc" "src/iso/CMakeFiles/qelect_iso.dir/src/equivalence.cpp.o.d"
  "/root/repo/src/iso/src/refinement.cpp" "src/iso/CMakeFiles/qelect_iso.dir/src/refinement.cpp.o" "gcc" "src/iso/CMakeFiles/qelect_iso.dir/src/refinement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/qelect_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qelect_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
