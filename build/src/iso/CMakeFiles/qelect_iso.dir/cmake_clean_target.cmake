file(REMOVE_RECURSE
  "libqelect_iso.a"
)
