file(REMOVE_RECURSE
  "libqelect_core.a"
)
