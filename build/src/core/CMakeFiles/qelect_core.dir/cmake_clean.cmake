file(REMOVE_RECURSE
  "CMakeFiles/qelect_core.dir/src/agent_map.cpp.o"
  "CMakeFiles/qelect_core.dir/src/agent_map.cpp.o.d"
  "CMakeFiles/qelect_core.dir/src/analysis.cpp.o"
  "CMakeFiles/qelect_core.dir/src/analysis.cpp.o.d"
  "CMakeFiles/qelect_core.dir/src/baselines.cpp.o"
  "CMakeFiles/qelect_core.dir/src/baselines.cpp.o.d"
  "CMakeFiles/qelect_core.dir/src/elect.cpp.o"
  "CMakeFiles/qelect_core.dir/src/elect.cpp.o.d"
  "CMakeFiles/qelect_core.dir/src/gather.cpp.o"
  "CMakeFiles/qelect_core.dir/src/gather.cpp.o.d"
  "CMakeFiles/qelect_core.dir/src/map_drawing.cpp.o"
  "CMakeFiles/qelect_core.dir/src/map_drawing.cpp.o.d"
  "CMakeFiles/qelect_core.dir/src/petersen.cpp.o"
  "CMakeFiles/qelect_core.dir/src/petersen.cpp.o.d"
  "CMakeFiles/qelect_core.dir/src/surrounding.cpp.o"
  "CMakeFiles/qelect_core.dir/src/surrounding.cpp.o.d"
  "libqelect_core.a"
  "libqelect_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
