
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/agent_map.cpp" "src/core/CMakeFiles/qelect_core.dir/src/agent_map.cpp.o" "gcc" "src/core/CMakeFiles/qelect_core.dir/src/agent_map.cpp.o.d"
  "/root/repo/src/core/src/analysis.cpp" "src/core/CMakeFiles/qelect_core.dir/src/analysis.cpp.o" "gcc" "src/core/CMakeFiles/qelect_core.dir/src/analysis.cpp.o.d"
  "/root/repo/src/core/src/baselines.cpp" "src/core/CMakeFiles/qelect_core.dir/src/baselines.cpp.o" "gcc" "src/core/CMakeFiles/qelect_core.dir/src/baselines.cpp.o.d"
  "/root/repo/src/core/src/elect.cpp" "src/core/CMakeFiles/qelect_core.dir/src/elect.cpp.o" "gcc" "src/core/CMakeFiles/qelect_core.dir/src/elect.cpp.o.d"
  "/root/repo/src/core/src/gather.cpp" "src/core/CMakeFiles/qelect_core.dir/src/gather.cpp.o" "gcc" "src/core/CMakeFiles/qelect_core.dir/src/gather.cpp.o.d"
  "/root/repo/src/core/src/map_drawing.cpp" "src/core/CMakeFiles/qelect_core.dir/src/map_drawing.cpp.o" "gcc" "src/core/CMakeFiles/qelect_core.dir/src/map_drawing.cpp.o.d"
  "/root/repo/src/core/src/petersen.cpp" "src/core/CMakeFiles/qelect_core.dir/src/petersen.cpp.o" "gcc" "src/core/CMakeFiles/qelect_core.dir/src/petersen.cpp.o.d"
  "/root/repo/src/core/src/surrounding.cpp" "src/core/CMakeFiles/qelect_core.dir/src/surrounding.cpp.o" "gcc" "src/core/CMakeFiles/qelect_core.dir/src/surrounding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/qelect_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cayley/CMakeFiles/qelect_cayley.dir/DependInfo.cmake"
  "/root/repo/build/src/views/CMakeFiles/qelect_views.dir/DependInfo.cmake"
  "/root/repo/build/src/iso/CMakeFiles/qelect_iso.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/qelect_group.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/qelect_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qelect_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
