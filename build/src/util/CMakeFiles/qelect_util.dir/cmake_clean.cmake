file(REMOVE_RECURSE
  "CMakeFiles/qelect_util.dir/src/math.cpp.o"
  "CMakeFiles/qelect_util.dir/src/math.cpp.o.d"
  "CMakeFiles/qelect_util.dir/src/parallel.cpp.o"
  "CMakeFiles/qelect_util.dir/src/parallel.cpp.o.d"
  "CMakeFiles/qelect_util.dir/src/rng.cpp.o"
  "CMakeFiles/qelect_util.dir/src/rng.cpp.o.d"
  "CMakeFiles/qelect_util.dir/src/table.cpp.o"
  "CMakeFiles/qelect_util.dir/src/table.cpp.o.d"
  "libqelect_util.a"
  "libqelect_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
