file(REMOVE_RECURSE
  "libqelect_util.a"
)
