# Empty dependencies file for qelect_util.
# This may be replaced when dependencies are built.
