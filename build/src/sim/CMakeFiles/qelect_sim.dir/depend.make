# Empty dependencies file for qelect_sim.
# This may be replaced when dependencies are built.
