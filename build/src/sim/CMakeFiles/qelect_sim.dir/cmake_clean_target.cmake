file(REMOVE_RECURSE
  "libqelect_sim.a"
)
