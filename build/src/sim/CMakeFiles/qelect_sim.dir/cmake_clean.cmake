file(REMOVE_RECURSE
  "CMakeFiles/qelect_sim.dir/src/color.cpp.o"
  "CMakeFiles/qelect_sim.dir/src/color.cpp.o.d"
  "CMakeFiles/qelect_sim.dir/src/message_world.cpp.o"
  "CMakeFiles/qelect_sim.dir/src/message_world.cpp.o.d"
  "CMakeFiles/qelect_sim.dir/src/scheduler.cpp.o"
  "CMakeFiles/qelect_sim.dir/src/scheduler.cpp.o.d"
  "CMakeFiles/qelect_sim.dir/src/whiteboard.cpp.o"
  "CMakeFiles/qelect_sim.dir/src/whiteboard.cpp.o.d"
  "CMakeFiles/qelect_sim.dir/src/world.cpp.o"
  "CMakeFiles/qelect_sim.dir/src/world.cpp.o.d"
  "libqelect_sim.a"
  "libqelect_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
