
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/color.cpp" "src/sim/CMakeFiles/qelect_sim.dir/src/color.cpp.o" "gcc" "src/sim/CMakeFiles/qelect_sim.dir/src/color.cpp.o.d"
  "/root/repo/src/sim/src/message_world.cpp" "src/sim/CMakeFiles/qelect_sim.dir/src/message_world.cpp.o" "gcc" "src/sim/CMakeFiles/qelect_sim.dir/src/message_world.cpp.o.d"
  "/root/repo/src/sim/src/scheduler.cpp" "src/sim/CMakeFiles/qelect_sim.dir/src/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/qelect_sim.dir/src/scheduler.cpp.o.d"
  "/root/repo/src/sim/src/whiteboard.cpp" "src/sim/CMakeFiles/qelect_sim.dir/src/whiteboard.cpp.o" "gcc" "src/sim/CMakeFiles/qelect_sim.dir/src/whiteboard.cpp.o.d"
  "/root/repo/src/sim/src/world.cpp" "src/sim/CMakeFiles/qelect_sim.dir/src/world.cpp.o" "gcc" "src/sim/CMakeFiles/qelect_sim.dir/src/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/qelect_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qelect_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
