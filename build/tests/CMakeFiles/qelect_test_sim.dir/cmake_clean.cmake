file(REMOVE_RECURSE
  "CMakeFiles/qelect_test_sim.dir/test_map_drawing.cpp.o"
  "CMakeFiles/qelect_test_sim.dir/test_map_drawing.cpp.o.d"
  "CMakeFiles/qelect_test_sim.dir/test_message_world.cpp.o"
  "CMakeFiles/qelect_test_sim.dir/test_message_world.cpp.o.d"
  "CMakeFiles/qelect_test_sim.dir/test_sim.cpp.o"
  "CMakeFiles/qelect_test_sim.dir/test_sim.cpp.o.d"
  "qelect_test_sim"
  "qelect_test_sim.pdb"
  "qelect_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
