# Empty compiler generated dependencies file for qelect_test_sim.
# This may be replaced when dependencies are built.
