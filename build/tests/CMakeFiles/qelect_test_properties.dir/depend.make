# Empty dependencies file for qelect_test_properties.
# This may be replaced when dependencies are built.
