file(REMOVE_RECURSE
  "CMakeFiles/qelect_test_properties.dir/test_exhaustive.cpp.o"
  "CMakeFiles/qelect_test_properties.dir/test_exhaustive.cpp.o.d"
  "CMakeFiles/qelect_test_properties.dir/test_properties.cpp.o"
  "CMakeFiles/qelect_test_properties.dir/test_properties.cpp.o.d"
  "qelect_test_properties"
  "qelect_test_properties.pdb"
  "qelect_test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
