# Empty compiler generated dependencies file for qelect_test_extensions.
# This may be replaced when dependencies are built.
