file(REMOVE_RECURSE
  "CMakeFiles/qelect_test_extensions.dir/test_extensions.cpp.o"
  "CMakeFiles/qelect_test_extensions.dir/test_extensions.cpp.o.d"
  "CMakeFiles/qelect_test_extensions.dir/test_structures.cpp.o"
  "CMakeFiles/qelect_test_extensions.dir/test_structures.cpp.o.d"
  "qelect_test_extensions"
  "qelect_test_extensions.pdb"
  "qelect_test_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_test_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
