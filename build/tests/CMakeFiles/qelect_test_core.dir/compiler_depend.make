# Empty compiler generated dependencies file for qelect_test_core.
# This may be replaced when dependencies are built.
