file(REMOVE_RECURSE
  "CMakeFiles/qelect_test_core.dir/test_analysis.cpp.o"
  "CMakeFiles/qelect_test_core.dir/test_analysis.cpp.o.d"
  "CMakeFiles/qelect_test_core.dir/test_baselines.cpp.o"
  "CMakeFiles/qelect_test_core.dir/test_baselines.cpp.o.d"
  "CMakeFiles/qelect_test_core.dir/test_elect.cpp.o"
  "CMakeFiles/qelect_test_core.dir/test_elect.cpp.o.d"
  "CMakeFiles/qelect_test_core.dir/test_petersen.cpp.o"
  "CMakeFiles/qelect_test_core.dir/test_petersen.cpp.o.d"
  "qelect_test_core"
  "qelect_test_core.pdb"
  "qelect_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
