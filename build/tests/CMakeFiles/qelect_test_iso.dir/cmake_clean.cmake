file(REMOVE_RECURSE
  "CMakeFiles/qelect_test_iso.dir/test_cayley.cpp.o"
  "CMakeFiles/qelect_test_iso.dir/test_cayley.cpp.o.d"
  "CMakeFiles/qelect_test_iso.dir/test_iso.cpp.o"
  "CMakeFiles/qelect_test_iso.dir/test_iso.cpp.o.d"
  "CMakeFiles/qelect_test_iso.dir/test_views.cpp.o"
  "CMakeFiles/qelect_test_iso.dir/test_views.cpp.o.d"
  "qelect_test_iso"
  "qelect_test_iso.pdb"
  "qelect_test_iso[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_test_iso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
