# Empty compiler generated dependencies file for qelect_test_iso.
# This may be replaced when dependencies are built.
