# Empty dependencies file for qelect_test_theory.
# This may be replaced when dependencies are built.
