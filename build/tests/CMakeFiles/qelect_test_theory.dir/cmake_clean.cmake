file(REMOVE_RECURSE
  "CMakeFiles/qelect_test_theory.dir/test_theory.cpp.o"
  "CMakeFiles/qelect_test_theory.dir/test_theory.cpp.o.d"
  "qelect_test_theory"
  "qelect_test_theory.pdb"
  "qelect_test_theory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_test_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
