file(REMOVE_RECURSE
  "CMakeFiles/qelect_test_foundations.dir/test_graph.cpp.o"
  "CMakeFiles/qelect_test_foundations.dir/test_graph.cpp.o.d"
  "CMakeFiles/qelect_test_foundations.dir/test_group.cpp.o"
  "CMakeFiles/qelect_test_foundations.dir/test_group.cpp.o.d"
  "CMakeFiles/qelect_test_foundations.dir/test_util.cpp.o"
  "CMakeFiles/qelect_test_foundations.dir/test_util.cpp.o.d"
  "qelect_test_foundations"
  "qelect_test_foundations.pdb"
  "qelect_test_foundations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qelect_test_foundations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
