# Empty dependencies file for qelect_test_foundations.
# This may be replaced when dependencies are built.
