# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/qelect_test_foundations[1]_include.cmake")
include("/root/repo/build/tests/qelect_test_iso[1]_include.cmake")
include("/root/repo/build/tests/qelect_test_sim[1]_include.cmake")
include("/root/repo/build/tests/qelect_test_core[1]_include.cmake")
include("/root/repo/build/tests/qelect_test_theory[1]_include.cmake")
include("/root/repo/build/tests/qelect_test_extensions[1]_include.cmake")
include("/root/repo/build/tests/qelect_test_properties[1]_include.cmake")
