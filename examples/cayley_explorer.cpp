// Cayley explorer: recognition, group reconstruction, and the corrected
// effectual-election test on a graph of your choice.
//
//   cayley_explorer [ring|hypercube|torus|k5|petersen|ccc] [agents...]
//
// Shows |Aut(G)|, every regular subgroup found (i.e. every group structure
// the topology carries), and -- for the given placement -- each subgroup's
// color-preserving translation count |R_p|.  Any |R_p| > 1 proves election
// impossible (Theorem 4.1's construction + Theorem 2.1); the paper's
// single-group reading would miss some of these (try: ring4 0 1).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "qelect/cayley/recognition.hpp"
#include "qelect/cayley/translation.hpp"
#include "qelect/core/analysis.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/util/table.hpp"

int main(int argc, char** argv) {
  using namespace qelect;
  const std::string which = argc > 1 ? argv[1] : "ring6";
  graph::Graph g = [&]() -> graph::Graph {
    if (which == "ring4") return graph::ring(4);
    if (which == "ring6") return graph::ring(6);
    if (which == "ring8") return graph::ring(8);
    if (which == "hypercube") return graph::hypercube(3);
    if (which == "torus") return graph::torus({3, 3});
    if (which == "k5") return graph::complete(5);
    if (which == "petersen") return graph::petersen();
    if (which == "ccc") return graph::cube_connected_cycles(3);
    std::fprintf(stderr, "unknown graph '%s'\n", which.c_str());
    std::exit(2);
  }();

  std::vector<graph::NodeId> agents;
  for (int i = 2; i < argc; ++i) {
    agents.push_back(static_cast<graph::NodeId>(std::atoi(argv[i])));
  }
  if (agents.empty()) agents = {0, 1};
  const graph::Placement p(g.node_count(), agents);

  std::printf("%s: n=%zu m=%zu\n", which.c_str(), g.node_count(),
              g.edge_count());
  const auto rec = cayley::recognize_cayley(g);
  std::printf("|Aut(G)| = %zu, Cayley: %s, regular subgroups found: %zu\n",
              rec.aut_order, rec.is_cayley ? "yes" : "NO",
              rec.regular_subgroups.size());

  if (rec.is_cayley) {
    TextTable table("group structures and their election obstructions",
                    {"subgroup", "abelian", "|R_p|", "translation classes"});
    for (std::size_t i = 0; i < rec.regular_subgroups.size(); ++i) {
      const auto& sub = rec.regular_subgroups[i];
      const auto rc = cayley::reconstruct_group(g, sub);
      const auto tc = cayley::translation_classes(sub, p);
      table.add_row({"#" + std::to_string(i),
                     rc.gamma.is_abelian() ? "yes" : "no",
                     std::to_string(tc.stabilizer_order),
                     std::to_string(tc.classes.size()) + " of size " +
                         std::to_string(tc.stabilizer_order)});
    }
    table.print();
    const std::size_t obstruction =
        cayley::max_translation_obstruction(rec.regular_subgroups, p);
    std::printf("max |R_p| over all subgroups: %zu => election %s\n",
                obstruction,
                obstruction > 1 ? "IMPOSSIBLE (corrected Theorem 4.1)"
                                : "not obstructed by translations");
  }

  const auto plan = core::protocol_plan(g, p);
  std::printf("equivalence classes (Lemma 3.1 order):");
  for (auto s : plan.sizes) std::printf(" %llu", (unsigned long long)s);
  std::printf("  gcd = %llu => ELECT %s\n",
              (unsigned long long)plan.final_gcd,
              plan.final_gcd == 1 ? "elects" : "reports failure");
  return 0;
}
