// The Petersen paradox (Section 4 of the paper).
//
// Two agents on adjacent nodes of the Petersen graph:
//   * protocol ELECT computes classes of sizes 2, 4, 4 => gcd 2 => gives up;
//   * yet a 5-step ad-hoc protocol elects a leader every time, by racing to
//     acquire the unique common neighbor of two marked nodes.
// This program runs both protocols on the same instance and shows the full
// analysis: vertex-transitive, not Cayley, no translation obstruction --
// the instance the paper's machinery cannot classify.  The ad-hoc run is
// also recorded to a JSONL trace, its schedule loaded back from the file,
// and re-executed via SchedulerPolicy::Replay -- the acquire race is a
// genuine race, so being able to pin and rerun the exact interleaving is
// what makes the paradox debuggable.
#include <cstdio>

#include "qelect/cayley/recognition.hpp"
#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/core/petersen.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/replay.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/trace/jsonl_sink.hpp"
#include "qelect/trace/schedule.hpp"

int main() {
  using namespace qelect;
  const graph::Graph g = graph::petersen();
  const graph::Placement p(10, {0, 5});  // adjacent via a spoke

  const core::FeasibilityReport report = core::analyze(g, p);
  std::printf("Petersen graph, agents at {0, 5} (adjacent)\n");
  std::printf("class sizes:");
  for (auto s : report.plan.sizes) std::printf(" %llu", (unsigned long long)s);
  std::printf("  gcd = %llu\n", (unsigned long long)report.plan.final_gcd);
  std::printf("is Cayley: %s   |Aut| = %zu   verdict: %s\n",
              report.is_cayley ? "yes" : "no", report.aut_order,
              report.verdict_string().c_str());

  {
    sim::World w(g, p, 41);
    const auto r = w.run(core::make_elect_protocol(), {});
    std::printf("ELECT: %s (as Theorem 3.1 predicts for gcd > 1)\n",
                r.clean_failure() ? "reports failure" : "unexpected");
  }
  {
    sim::World w(g, p, 41);
    const auto r = w.run(core::make_petersen_protocol(), {});
    std::printf("ad-hoc protocol: %s\n",
                r.clean_election() ? "elects a leader" : "unexpected");
    std::printf("  (%zu total moves -- the race at the common neighbor "
                "breaks the symmetry ELECT cannot)\n",
                r.total_moves);
  }
  {
    // Record the race to JSONL, then replay the exact interleaving from
    // the file and verify the outcome is bitwise-identical.
    const char* path = "petersen_paradox.trace.jsonl";
    sim::World w(g, p, 41);
    sim::RunConfig cfg;
    cfg.seed = 7;
    cfg.trace_label = "petersen {0,5} ad-hoc";
    sim::RecordedRun recorded;
    {
      trace::JsonlSink jsonl(path);
      cfg.sink = &jsonl;
      recorded = sim::record_run(w, core::make_petersen_protocol(), cfg);
    }
    cfg.sink = nullptr;
    const trace::Schedule schedule = trace::load_schedule_jsonl_file(path);
    const auto verification = sim::verify_replay(
        w, core::make_petersen_protocol(), cfg, recorded.result, schedule);
    std::printf("trace: %s (%zu scheduler picks); replay from file: %s\n",
                path, schedule.size(),
                verification.identical ? "identical RunResult"
                                       : verification.divergence.c_str());
  }
  return 0;
}
