// Qualitative vs quantitative computing, side by side (the paper's Table 1
// in miniature).
//
// Same network, same placements, three agent models:
//   * quantitative (comparable integer labels): the two-phase universal
//     protocol always elects;
//   * qualitative (distinct incomparable colors): ELECT elects exactly when
//     gcd of the class sizes is 1;
//   * anonymous: the Section 1.3 lockstep experiment shows two different
//     inputs are observationally identical, so no protocol exists at all.
#include <cstdio>
#include <memory>

#include "qelect/core/analysis.hpp"
#include "qelect/core/baselines.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/util/table.hpp"

int main() {
  using namespace qelect;
  TextTable table("election outcomes per agent model",
                  {"instance", "quantitative", "qualitative (ELECT)"});

  struct Inst {
    std::string name;
    graph::Graph g;
    graph::Placement p;
  };
  std::vector<Inst> insts;
  insts.push_back({"C_6 {0,2}", graph::ring(6), graph::Placement(6, {0, 2})});
  insts.push_back({"C_6 {0,3}", graph::ring(6), graph::Placement(6, {0, 3})});
  insts.push_back({"K_2 {0,1}", graph::complete(2),
                   graph::Placement(2, {0, 1})});
  insts.push_back({"Q_3 {0,3,5}", graph::hypercube(3),
                   graph::Placement(8, {0, 3, 5})});

  for (const auto& inst : insts) {
    sim::World quant = sim::World::quantitative(inst.g, inst.p, 7);
    const auto rq = quant.run(core::make_quantitative_protocol(), {});
    sim::World qual(inst.g, inst.p, 7);
    const auto rc = qual.run(core::make_elect_protocol(), {});
    table.add_row({inst.name, rq.clean_election() ? "elects" : "fails",
                   rc.clean_election()  ? "elects"
                   : rc.clean_failure() ? "detects impossibility"
                                        : "error"});
  }
  table.print();

  // The anonymous model: C_3 with one agent vs C_6 with two antipodal
  // agents, synchronous scheduler.  An anonymous agent cannot tell them
  // apart -- its entire observation history is identical in both worlds.
  const std::size_t steps = 9;
  auto t3 = std::make_shared<core::WalkTraces>();
  sim::RunConfig lockstep;
  lockstep.policy = sim::SchedulerPolicy::Lockstep;
  sim::World w3(graph::ring(3), graph::Placement(3, {0}), 1);
  w3.run(core::make_anonymous_walker(t3, steps), lockstep);
  auto t6 = std::make_shared<core::WalkTraces>();
  sim::World w6(graph::ring(6), graph::Placement(6, {0, 3}), 2);
  w6.run(core::make_anonymous_walker(t6, steps), lockstep);

  const bool identical =
      (*t6)[0] == (*t3)[0] && (*t6)[1] == (*t3)[0];
  std::printf(
      "\nanonymous model, lockstep: C_3/1-agent history %s C_6/2-agent "
      "history\n=> no anonymous protocol can be correct on both (Section "
      "1.3)\n",
      identical ? "IDENTICAL to" : "differs from");
  return 0;
}
