// Analyze an election instance read from a file.
//
//   analyze_file <graph.edgelist> <home-base> [<home-base> ...]
//
// The file uses the library's edge-list format ('n <count>' then
// 'e <u> <v>' lines; '#' comments).  Prints the class decomposition, the
// Theorem 3.1 verdict, the Cayley analysis, and -- when a leader is
// possible -- runs the live protocol to demonstrate it.  Exit code 0 when
// the live run matches the oracle.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/graph/io.hpp"
#include "qelect/sim/world.hpp"

int main(int argc, char** argv) {
  using namespace qelect;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <graph.edgelist> <home-base> [<home-base>...]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  graph::Graph g = graph::from_edge_list(buffer.str());
  std::vector<graph::NodeId> bases;
  for (int i = 2; i < argc; ++i) {
    bases.push_back(static_cast<graph::NodeId>(std::atoi(argv[i])));
  }
  const graph::Placement p(g.node_count(), bases);

  const core::FeasibilityReport report = core::analyze(g, p);
  std::printf("graph: n=%zu m=%zu   agents: %zu\n", g.node_count(),
              g.edge_count(), p.agent_count());
  std::printf("class sizes:");
  for (auto s : report.plan.sizes) std::printf(" %llu", (unsigned long long)s);
  std::printf("   gcd = %llu\n", (unsigned long long)report.plan.final_gcd);
  if (report.cayley_checked) {
    std::printf("Cayley: %s", report.is_cayley ? "yes" : "no");
    if (report.is_cayley) {
      std::printf(" (|Aut| = %zu, %zu group structures, max |R_p| = %zu)",
                  report.aut_order, report.regular_subgroup_count,
                  report.translation_obstruction);
    }
    std::printf("\n");
  }
  std::printf("verdict: %s\n", report.verdict_string().c_str());

  sim::World w(std::move(g), p, 1);
  const sim::RunResult r = w.run(core::make_elect_protocol(), {});
  const bool ok = r.completed &&
                  r.clean_election() == report.elect_succeeds &&
                  r.clean_failure() == !report.elect_succeeds;
  std::printf("live ELECT: %s (%zu moves, %zu board accesses)\n",
              r.clean_election()  ? "elected a leader"
              : r.clean_failure() ? "detected impossibility"
                                  : "ERROR",
              r.total_moves, r.total_board_accesses);
  return ok ? 0 : 1;
}
