// Swarm rendezvous: gathering a robot swarm without comparable IDs.
//
// The paper's footnote 2 observes that election makes gathering easy.
// Scenario: a swarm of maintenance robots wakes up scattered over a torus
// interconnect; they must all meet at one node to exchange parts.  Their
// serial numbers are unreadable to each other (different vendors -- the
// qualitative world!), so they gather by electing a leader and converging
// on its home-base.  When the placement is too symmetric the swarm
// correctly reports that no meeting point can be agreed upon.
#include <cstdio>

#include "qelect/core/analysis.hpp"
#include "qelect/core/gather.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/util/table.hpp"

int main() {
  using namespace qelect;
  TextTable table("swarm rendezvous on a 4x4 torus",
                  {"robots", "oracle", "result", "meeting node", "moves"});

  const graph::Graph torus = graph::torus({4, 4});
  const std::vector<std::vector<graph::NodeId>> swarms = {
      {0, 5, 10},        // asymmetric: gathers
      {1, 2, 7, 11, 13}, // five robots, asymmetric: gathers
      {0, 2, 8, 10},     // a sublattice: too symmetric, no meeting point
  };
  for (const auto& bases : swarms) {
    const graph::Placement p(16, bases);
    const auto plan = core::protocol_plan(torus, p);
    sim::World w(torus, p, 77);
    const auto r = w.run(core::make_gather_protocol(), {});
    std::string meeting = "-";
    if (r.clean_election()) {
      meeting = std::to_string(r.agents[0].final_position);
      for (const auto& a : r.agents) {
        if (a.final_position != r.agents[0].final_position) {
          meeting = "SCATTERED?";
        }
      }
    }
    table.add_row({std::to_string(bases.size()),
                   plan.final_gcd == 1 ? "gather" : "impossible",
                   r.clean_election()    ? "gathered"
                   : r.clean_failure()   ? "declined (symmetric)"
                                         : "error",
                   meeting, std::to_string(r.total_moves)});
  }
  table.print();
  std::printf(
      "\nA declined rendezvous is correct behavior: with gcd > 1 no\n"
      "deterministic qualitative protocol can pick a meeting point\n"
      "(Theorems 2.1/4.1), so the swarm stays put and reports it.\n");
  return 0;
}
