// Election on a hypercube "datacenter": a realistic multi-agent scenario.
//
// Eight service replicas sit on the corners of Q_3 (a classic interconnect
// topology).  We sweep every 3-replica placement, ask the oracle which
// placements admit a qualitative leader, and run the live protocol on a few
// of each kind -- including under adversarial port renumberings, since a
// real deployment controls neither the wiring order nor the scheduler.
#include <cstdio>
#include <vector>

#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/world.hpp"
#include "qelect/util/table.hpp"

int main() {
  using namespace qelect;
  const graph::Graph q3 = graph::hypercube(3);

  std::size_t solvable = 0, unsolvable = 0;
  std::vector<graph::Placement> examples_ok, examples_bad;
  for (const auto& p : graph::enumerate_placements(8, 3)) {
    const auto plan = core::protocol_plan(q3, p);
    if (plan.final_gcd == 1) {
      ++solvable;
      if (examples_ok.size() < 3) examples_ok.push_back(p);
    } else {
      ++unsolvable;
      if (examples_bad.size() < 3) examples_bad.push_back(p);
    }
  }
  std::printf("Q_3, all %zu three-agent placements: %zu solvable, %zu not\n",
              solvable + unsolvable, solvable, unsolvable);

  TextTable table("live runs on Q_3 (3 agents, adversarial ports)",
                  {"placement", "oracle", "protocol", "moves"});
  auto run_one = [&](const graph::Placement& p) {
    const auto plan = core::protocol_plan(q3, p);
    // Adversarial port renumbering: the protocol cannot rely on wiring.
    const graph::Graph shuffled =
        q3.permute_ports(graph::random_port_permutations(q3, 7));
    sim::World w(shuffled, p, 99);
    const auto r = w.run(core::make_elect_protocol(), {});
    std::string placement = "{";
    for (auto h : p.home_bases()) placement += std::to_string(h) + ",";
    placement.back() = '}';
    table.add_row({placement, plan.final_gcd == 1 ? "elect" : "impossible",
                   r.clean_election()  ? "elected"
                   : r.clean_failure() ? "failure-detected"
                                       : "error",
                   std::to_string(r.total_moves)});
  };
  for (const auto& p : examples_ok) run_one(p);
  for (const auto& p : examples_bad) run_one(p);
  table.print();
  return 0;
}
