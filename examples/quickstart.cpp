// Quickstart: elect a leader among qualitative agents on a ring.
//
// Demonstrates the core loop of the library in ~40 lines:
//   1. build an anonymous network and place agents,
//   2. ask the offline oracle whether election is solvable (Theorem 3.1),
//   3. run the live ELECT protocol in the simulator and compare.
//
// Try changing the placement to {0, 3} (antipodal on C_6): the oracle
// flips to gcd = 2 and the protocol reports, correctly, that no leader can
// exist.
#include <cstdio>

#include "qelect/core/analysis.hpp"
#include "qelect/core/elect.hpp"
#include "qelect/graph/families.hpp"
#include "qelect/sim/world.hpp"

int main() {
  using namespace qelect;

  // A 6-node anonymous ring with agents based at nodes 0 and 2.
  graph::Graph g = graph::ring(6);
  graph::Placement p(6, {0, 2});

  // Offline: what does the theory say?
  const core::FeasibilityReport report = core::analyze(g, p);
  std::printf("instance: C_6 with agents at {0, 2}\n");
  std::printf("equivalence class sizes:");
  for (const auto s : report.plan.sizes) std::printf(" %llu", (unsigned long long)s);
  std::printf("\ngcd = %llu  =>  verdict: %s\n",
              (unsigned long long)report.plan.final_gcd,
              report.verdict_string().c_str());

  // Live: run protocol ELECT with opaque, incomparable colors.
  sim::World world(std::move(g), p, /*color_seed=*/2026);
  const sim::RunResult r = world.run(core::make_elect_protocol(), {});

  std::printf("simulation: %zu steps, %zu moves, %zu whiteboard accesses\n",
              r.steps, r.total_moves, r.total_board_accesses);
  for (std::size_t i = 0; i < r.agents.size(); ++i) {
    const char* status =
        r.agents[i].status == sim::AgentStatus::Leader     ? "LEADER"
        : r.agents[i].status == sim::AgentStatus::Defeated ? "defeated"
                                                           : "failure";
    std::printf("agent %zu (home %u): %s\n", i, p.home_bases()[i], status);
  }
  std::printf("clean election: %s\n", r.clean_election() ? "yes" : "no");
  return r.clean_election() ? 0 : 1;
}
