// Shared drivers for the serving CLI surface: `qelectd` and the `qelect
// serve` / `qelect query` subcommands are thin wrappers around these two
// entry points, so the daemon binary and the CLI cannot drift apart.
#pragma once

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "qelect/campaign/workloads.hpp"
#include "qelect/serve/client.hpp"
#include "qelect/serve/server.hpp"
#include "qelect/util/assert.hpp"

namespace qelect::tools {

inline int serve_usage() {
  std::fprintf(
      stderr,
      "usage: serve [flags]\n"
      "\n"
      "  --host ADDR           listen address (default 127.0.0.1)\n"
      "  --port P              TCP port; 0 = ephemeral (default 7677)\n"
      "  --workers N           worker shards; 0 = hardware concurrency\n"
      "  --response-cache N    per-worker response cache entries (default 4096)\n"
      "  --cert-cache N        shared certificate cache entries (0 = default)\n"
      "  --plan-cache N        shared batch-plan cache entries (0 = default)\n"
      "  --coalesce-window US  RUN_ELECT coalescing window in microseconds\n"
      "                        (default 200; 0 disables micro-batching)\n"
      "  --coalesce-max N      largest coalesced slab (default 128)\n"
      "  --max-nodes N         largest instance any query may build\n"
      "  --max-payload BYTES   largest accepted request payload\n"
      "  --sigma-budget X      SIGMA labeling-enumeration budget\n"
      "\n"
      "Runs until SIGINT/SIGTERM, then shuts down cleanly.\n");
  return 2;
}

/// `qelectd` / `qelect serve`: flags from argv[from..), runs the daemon
/// until SIGINT/SIGTERM.
inline int serve_main(int argc, char** argv, int from) {
  serve::ServerOptions options;
  options.port = 7677;
  auto value = [&](int& i) -> std::string {
    QELECT_CHECK(i + 1 < argc, std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = from; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--host") {
      options.host = value(i);
    } else if (flag == "--port") {
      options.port = static_cast<std::uint16_t>(std::stoul(value(i)));
    } else if (flag == "--workers") {
      options.workers = std::stoul(value(i));
    } else if (flag == "--response-cache") {
      options.response_cache_capacity = std::stoul(value(i));
    } else if (flag == "--cert-cache") {
      options.cert_cache_capacity = std::stoul(value(i));
    } else if (flag == "--plan-cache") {
      options.plan_cache_capacity = std::stoul(value(i));
    } else if (flag == "--coalesce-window") {
      options.coalesce_window_us = std::stoull(value(i));
    } else if (flag == "--coalesce-max") {
      options.coalesce_max = static_cast<std::uint32_t>(std::stoul(value(i)));
    } else if (flag == "--max-nodes") {
      options.limits.max_nodes = std::stoul(value(i));
    } else if (flag == "--max-payload") {
      options.max_payload = std::stoul(value(i));
    } else if (flag == "--sigma-budget") {
      options.limits.sigma_budget = std::stod(value(i));
    } else if (flag == "--help" || flag == "-h") {
      return serve_usage();
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return serve_usage();
    }
  }

  // Block the shutdown signals before threads spawn so every thread
  // inherits the mask and only this thread's sigwait() sees them.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  serve::Server server(options);
  server.start();
  std::printf("qelectd listening on %s:%u (%zu workers)\n",
              options.host.c_str(), server.port(), server.worker_count());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&mask, &sig);
  std::fprintf(stderr, "qelectd: caught %s, shutting down\n",
               sig == SIGINT ? "SIGINT" : "SIGTERM");
  const auto counters = server.service().counters();
  std::uint64_t total = 0;
  for (std::uint64_t r : counters.requests) total += r;
  server.stop();
  std::printf("qelectd: served %llu requests (%llu errors) over %llu connections\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(counters.errors),
              static_cast<unsigned long long>(server.connections_accepted()));
  return 0;
}

inline int query_usage() {
  std::fprintf(
      stderr,
      "usage: query <opcode> [flags]\n"
      "\n"
      "  opcodes: ping electable sigma view-classes run-elect stats\n"
      "\n"
      "  --host ADDR        server address (default 127.0.0.1)\n"
      "  --port P           server port (default 7677)\n"
      "  --family NAME      graph family (ring, hypercube, torus, ...)\n"
      "  --params A,B       family parameters\n"
      "  --bases A,B        home-base nodes (the placement)\n"
      "  --alphabet N       SIGMA alphabet (0 = max degree)\n"
      "  --seed S           RUN_ELECT color/scheduler seed\n"
      "  --scheduler NAME   random | round-robin | lockstep | counter\n"
      "  --replicas N       RUN_ELECT burst size (> 1 needs counter)\n");
  return 2;
}

inline std::vector<std::uint64_t> parse_u64_list(const std::string& text) {
  std::vector<std::uint64_t> out;
  std::string token;
  for (char c : text) {
    if (c == ',') {
      QELECT_CHECK(!token.empty(), "empty element in list '" + text + "'");
      out.push_back(std::stoull(token));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) out.push_back(std::stoull(token));
  return out;
}

/// `qelect query`: one request against a running qelectd, human-readable
/// output.  Exits 0 on kStatusOk, 1 on an error status or transport
/// failure, 2 on usage errors.
inline int query_main(int argc, char** argv, int from) {
  if (from >= argc) return query_usage();
  const std::string opcode_arg = argv[from];
  const auto op = serve::opcode_from_name(opcode_arg);
  if (!op) {
    std::fprintf(stderr, "unknown opcode '%s'\n", opcode_arg.c_str());
    return query_usage();
  }

  std::string host = "127.0.0.1";
  std::uint16_t port = 7677;
  serve::InstanceRef inst;
  std::uint32_t alphabet = 0;
  std::uint64_t seed = 1;
  std::string scheduler = "random";
  std::uint32_t replicas = 1;
  auto value = [&](int& i) -> std::string {
    QELECT_CHECK(i + 1 < argc, std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = from + 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--host") {
      host = value(i);
    } else if (flag == "--port") {
      port = static_cast<std::uint16_t>(std::stoul(value(i)));
    } else if (flag == "--family") {
      inst.family = value(i);
    } else if (flag == "--params") {
      inst.params = parse_u64_list(value(i));
    } else if (flag == "--bases") {
      inst.home_bases.clear();
      for (std::uint64_t b : parse_u64_list(value(i))) {
        inst.home_bases.push_back(static_cast<std::uint32_t>(b));
      }
    } else if (flag == "--alphabet") {
      alphabet = static_cast<std::uint32_t>(std::stoul(value(i)));
    } else if (flag == "--seed") {
      seed = std::stoull(value(i));
    } else if (flag == "--scheduler") {
      scheduler = value(i);
    } else if (flag == "--replicas") {
      replicas = static_cast<std::uint32_t>(std::stoul(value(i)));
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return query_usage();
    }
  }

  serve::Client client = serve::Client::connect(host, port);
  const auto fail = [](const serve::ResponseHead& head) {
    std::fprintf(stderr, "error (%s): %s\n",
                 serve::status_name(head.status), head.error.c_str());
    return 1;
  };
  switch (*op) {
    case serve::Opcode::kPing: {
      QELECT_CHECK(client.ping(), "ping failed");
      std::printf("ok\n");
      return 0;
    }
    case serve::Opcode::kElectable: {
      const auto resp = client.electable(inst);
      if (resp.head.status != serve::kStatusOk) return fail(resp.head);
      std::printf("electable: %s\nclass: %s\ngcd: %llu\nnodes: %llu\n",
                  resp.electable ? "yes" : "no",
                  campaign::classification_name(resp.classification),
                  static_cast<unsigned long long>(resp.final_gcd),
                  static_cast<unsigned long long>(resp.nodes));
      return 0;
    }
    case serve::Opcode::kSigma: {
      const auto resp = client.sigma({inst, alphabet});
      if (resp.head.status != serve::kStatusOk) return fail(resp.head);
      std::printf("sigma: %llu\nalphabet: %u\nlabelings: %llu\n",
                  static_cast<unsigned long long>(resp.sigma), resp.alphabet,
                  static_cast<unsigned long long>(resp.labelings));
      return 0;
    }
    case serve::Opcode::kViewClasses: {
      const auto resp = client.view_classes(inst);
      if (resp.head.status != serve::kStatusOk) return fail(resp.head);
      std::printf("nodes: %llu\nclasses: %zu\n",
                  static_cast<unsigned long long>(resp.nodes),
                  resp.classes.size());
      for (std::size_t i = 0; i < resp.classes.size(); ++i) {
        std::printf("  [%zu] size=%zu:", i, resp.classes[i].size());
        for (std::uint32_t member : resp.classes[i]) {
          std::printf(" %u", member);
        }
        std::printf("\n");
      }
      return 0;
    }
    case serve::Opcode::kRunElect: {
      const auto resp = client.run_elect({inst, seed, scheduler, replicas});
      if (resp.head.status != serve::kStatusOk) return fail(resp.head);
      std::printf(
          "completed: %s\nclean_election: %s\nclean_failure: %s\n"
          "matches_oracle: %s\ngcd: %llu\nmoves: %llu\nsteps: %llu\n",
          resp.completed ? "yes" : "no", resp.clean_election ? "yes" : "no",
          resp.clean_failure ? "yes" : "no",
          resp.matches_oracle ? "yes" : "no",
          static_cast<unsigned long long>(resp.final_gcd),
          static_cast<unsigned long long>(resp.moves),
          static_cast<unsigned long long>(resp.steps));
      for (std::size_t i = 0; i < resp.replicas.size(); ++i) {
        const serve::ReplicaVerdict& v = resp.replicas[i];
        std::printf("replica %zu: %s moves=%llu steps=%llu\n", i,
                    v.matches_oracle ? "ok" : "MISMATCH",
                    static_cast<unsigned long long>(v.moves),
                    static_cast<unsigned long long>(v.steps));
      }
      return 0;
    }
    case serve::Opcode::kStats: {
      const auto resp = client.stats();
      if (resp.head.status != serve::kStatusOk) return fail(resp.head);
      for (const auto& [key, counter] : resp.counters) {
        std::printf("%s: %llu\n", key.c_str(),
                    static_cast<unsigned long long>(counter));
      }
      return 0;
    }
  }
  return 2;
}

}  // namespace qelect::tools
