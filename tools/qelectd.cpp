// qelectd: the standalone election-query daemon (see docs/SERVING.md).
// Identical behavior to `qelect serve`; this binary exists so deployments
// do not need to ship the whole campaign CLI.
#include <cstdio>

#include "serve_common.hpp"

int main(int argc, char** argv) {
  try {
    return qelect::tools::serve_main(argc, argv, 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qelectd: %s\n", e.what());
    return 1;
  }
}
