#!/usr/bin/env python3
"""Aggregate BENCH_<name>.json files into one BENCH_summary.json.

Usage:
    tools/bench_summary.py [--dir DIR] [--out BENCH_summary.json]

Collects every BENCH_*.json produced by the bench_* binaries (schema in
bench/bench_json.hpp), merges them into a single machine-readable summary,
and prints a compact table.  Mixing results from different builds is a
measurement bug, so the script warns -- and marks the summary -- when the
per-file config hashes disagree, and when any file was produced in smoke
mode (QELECT_BENCH_SMOKE=1), whose timings are single uncalibrated runs.

Exit status is 0 even on warnings: CI archives smoke-mode artifacts for
schema checks, and gating on wall times of shared runners would flake.
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    for key in ("bench", "smoke", "config_hash", "cases"):
        if key not in data:
            raise ValueError(f"{path}: missing key {key!r}")
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dir", default=".", help="directory with BENCH_*.json")
    ap.add_argument("--out", default="BENCH_summary.json")
    args = ap.parse_args()

    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    paths = [p for p in paths if os.path.basename(p) != "BENCH_summary.json"]
    if not paths:
        print(f"bench_summary: no BENCH_*.json under {args.dir}",
              file=sys.stderr)
        return 1

    benches, warnings = [], []
    for path in paths:
        try:
            benches.append(load(path))
        except (ValueError, json.JSONDecodeError) as e:
            warnings.append(f"skipping {path}: {e}")
    hashes = sorted({b["config_hash"] for b in benches})
    if len(hashes) > 1:
        warnings.append(
            "mixed config hashes (results from different builds): "
            + ", ".join(hashes))
    smoke = [b["bench"] for b in benches if b["smoke"]]
    if smoke:
        warnings.append("smoke-mode files (timings not calibrated): "
                        + ", ".join(smoke))

    total_cases = sum(len(b["cases"]) for b in benches)
    speedups = {}
    for b in benches:
        for c in b["cases"]:
            s = c.get("counters", {}).get("speedup_vs_seed")
            if s is not None:
                speedups[f"{b['bench']}/{c['name']}"] = s

    summary = {
        "config_hashes": hashes,
        "benches": len(benches),
        "cases": total_cases,
        "warnings": warnings,
        "speedups_vs_seed": speedups,
        "files": benches,
    }
    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")

    print(f"bench_summary: {len(benches)} files, {total_cases} cases "
          f"-> {args.out}")
    for w in warnings:
        print(f"  WARNING: {w}")
    if speedups:
        print("  speedup_vs_seed:")
        for k, v in sorted(speedups.items()):
            print(f"    {k:48s} {v:7.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
