#!/usr/bin/env python3
"""Aggregate BENCH_<name>.json files into one BENCH_summary.json.

Usage:
    tools/bench_summary.py [--dir DIR] [--out BENCH_summary.json]

Collects every BENCH_*.json produced by the bench_* binaries (schema in
bench/bench_json.hpp), merges them into a single machine-readable summary,
and prints a compact table.  Mixing results from different builds is a
measurement bug, so the script warns -- and marks the summary -- when the
per-file config hashes disagree, and when any file was produced in smoke
mode (QELECT_BENCH_SMOKE=1), whose timings are single uncalibrated runs.

Campaign result stores -- binary WAL stores (*.results.qws and
campaign_*/results.qws, snapshot + frame log; format in docs/STORAGE.md)
and legacy JSONL stores (*.results.jsonl and campaign_*/results.jsonl;
schema in docs/CAMPAIGNS.md) -- are folded into a `campaigns` section:
per-store task/outcome/retry counts, with warnings for failed or
timed-out tasks and torn tails.

Exit status is 0 even on warnings by default: CI archives smoke-mode
artifacts for schema checks, and gating on wall times of shared runners
would flake.  Pass --strict to exit non-zero when a >15% regression
against a committed baseline is detected (the CI bench-smoke job does;
smoke-mode timings never count as regressions).  Serving cases with a
p99_latency_us counter additionally land in a `serve` section; a p99 more
than 25% over its committed baseline_p99_latency_us is a soft warning that
never fails --strict (tail latency on shared runners is too noisy to gate
on), while a coalesce_vs_sequential ratio below 3.0 is a fatal regression
under --strict (the micro-batching acceptance bar).
"""

import argparse
import glob
import json
import os
import struct
import sys
import zlib


def load(path):
    with open(path) as f:
        data = json.load(f)
    for key in ("bench", "smoke", "config_hash", "cases"):
        if key not in data:
            raise ValueError(f"{path}: missing key {key!r}")
    return data


def _empty_campaign_summary(path):
    return {
        "store": path,
        "campaign": None,
        "spec_hash": None,
        "tasks": 0,
        "ok": 0,
        "failed": 0,
        "timeout": 0,
        "retries": 0,
        "torn_tail": False,
    }


def _wal_str(buf, off):
    if off + 4 > len(buf):
        raise ValueError("truncated string")
    (n,) = struct.unpack_from("<I", buf, off)
    off += 4
    if off + n > len(buf):
        raise ValueError("truncated string")
    return buf[off:off + n].decode("utf-8", "replace"), off + n


def _wal_task(payload):
    """Decode a type-2 (task) frame payload into a record dict."""
    idx, = struct.unpack_from("<Q", payload, 1)
    key, off = _wal_str(payload, 9)
    outcome, off = _wal_str(payload, off)
    attempts, = struct.unpack_from("<I", payload, off)
    off += 12  # u32 attempts + f64 duration_seconds
    error, off = _wal_str(payload, off)
    return {"task_index": idx, "key": key, "outcome": outcome,
            "attempts": attempts, "error": error}


def _wal_bytes(buf, off):
    (n,) = struct.unpack_from("<I", buf, off)
    off += 4
    if off + n > len(buf):
        raise ValueError("truncated entry")
    return buf[off:off + n], off + n


def _load_snapshot_tasks(snap_path):
    """Records from a <store>.snap file ("QSNP" | body | crc32(body))."""
    with open(snap_path, "rb") as f:
        raw = f.read()
    if raw[:4] != b"QSNP" or len(raw) < 8:
        raise ValueError(f"{snap_path}: not a snapshot")
    body, crc = raw[4:-4], struct.unpack("<I", raw[-4:])[0]
    if zlib.crc32(body) != crc:
        raise ValueError(f"{snap_path}: checksum mismatch")
    off = 4 + 8 + 8  # u32 version, u64 generation, u64 spec_hash
    _name, off = _wal_str(body, off)
    _spec, off = _wal_str(body, off)
    count, = struct.unpack_from("<Q", body, off)
    off += 8
    tasks = []
    for _ in range(count):
        entry, off = _wal_bytes(body, off)
        tasks.append(_wal_task(b"\x02" + entry))
    return tasks


def load_wal_campaign(path, raw):
    """Parse one binary WAL store (docs/STORAGE.md) into a summary dict.

    Mirrors campaign::load_store: the log's valid prefix ends at the first
    frame with a bad length or checksum (torn tail); a compacted store's
    records come from <path>.snap plus the replayed tail; later records for
    a key win.
    """
    summary = _empty_campaign_summary(path)
    by_key = {}
    off, header_seen, base_records = 4, False, 0
    while off < len(raw):
        if off + 8 > len(raw):
            summary["torn_tail"] = True
            break
        length, crc = struct.unpack_from("<II", raw, off)
        payload = raw[off + 8:off + 8 + length]
        if length == 0 or len(payload) < length or zlib.crc32(payload) != crc:
            summary["torn_tail"] = True
            break
        off += 8 + length
        if payload[0] == 1 and not header_seen:
            header_seen = True
            _ver, _gen, base_records, spec_hash = struct.unpack_from(
                "<IQQQ", payload, 1)
            summary["campaign"], _ = _wal_str(payload, 29)
            summary["spec_hash"] = f"{spec_hash:016x}"
        elif payload[0] == 2:
            rec = _wal_task(payload)
            by_key[rec["key"]] = rec
    if base_records > 0:
        snap_tasks = _load_snapshot_tasks(path + ".snap")
        merged = {rec["key"]: rec for rec in snap_tasks}
        merged.update(by_key)
        by_key = merged
    for rec in by_key.values():
        summary["tasks"] += 1
        outcome = rec["outcome"]
        key = outcome if outcome in ("ok", "failed", "timeout") else "failed"
        summary[key] += 1
        summary["retries"] += max(0, rec["attempts"] - 1)
    return summary


def load_campaign(path):
    """Parse one campaign result store (WAL or legacy JSONL) into a
    summary dict.

    JSONL: tolerates a torn final line (a kill mid-append leaves one); any
    other malformed line is an error, mirroring campaign::load_store.
    """
    with open(path, "rb") as f:
        raw = f.read()
    if raw[:4] == b"QWAL":
        return load_wal_campaign(path, raw)
    summary = _empty_campaign_summary(path)
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    elif lines:
        summary["torn_tail"] = True
        lines.pop()
    for i, line in enumerate(lines):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                summary["torn_tail"] = True
                continue
            raise ValueError(f"{path}: malformed line {i + 1}")
        if rec.get("type") == "campaign":
            summary["campaign"] = rec.get("name")
            summary["spec_hash"] = rec.get("spec_hash")
        elif rec.get("type") == "task":
            summary["tasks"] += 1
            outcome = rec.get("outcome", "failed")
            key = outcome if outcome in ("ok", "failed", "timeout") else "failed"
            summary[key] += 1
            summary["retries"] += max(0, rec.get("attempts", 1) - 1)
    return summary


def collect_campaigns(root):
    paths = sorted(
        glob.glob(os.path.join(root, "*.results.qws"))
        + glob.glob(os.path.join(root, "campaign_*", "results.qws"))
        + glob.glob(os.path.join(root, "*.results.jsonl"))
        + glob.glob(os.path.join(root, "campaign_*", "results.jsonl")))
    summaries, warnings = [], []
    for path in paths:
        try:
            summaries.append(load_campaign(path))
        except (ValueError, OSError, struct.error) as e:
            warnings.append(f"skipping campaign store {path}: {e}")
            continue
        s = summaries[-1]
        if s["failed"] or s["timeout"]:
            warnings.append(
                f"{path}: {s['failed']} failed, {s['timeout']} timed-out "
                f"task(s)")
        if s["torn_tail"]:
            warnings.append(f"{path}: torn tail (killed mid-append)")
    return summaries, warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dir", default=".", help="directory with BENCH_*.json")
    ap.add_argument("--out", default="BENCH_summary.json")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero when a >15%% regression against a "
                         "committed baseline is detected")
    args = ap.parse_args()

    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    paths = [p for p in paths
             if os.path.basename(p) != "BENCH_summary.json"
             and not p.endswith(".results.jsonl")]
    campaigns, campaign_warnings = collect_campaigns(args.dir)
    if not paths and not campaigns:
        print(f"bench_summary: no BENCH_*.json under {args.dir}",
              file=sys.stderr)
        return 1

    benches, warnings = [], list(campaign_warnings)
    for path in paths:
        try:
            benches.append(load(path))
        except (ValueError, json.JSONDecodeError) as e:
            warnings.append(f"skipping {path}: {e}")
    hashes = sorted({b["config_hash"] for b in benches})
    if len(hashes) > 1:
        warnings.append(
            "mixed config hashes (results from different builds): "
            + ", ".join(hashes))
    smoke = [b["bench"] for b in benches if b["smoke"]]
    if smoke:
        warnings.append("smoke-mode files (timings not calibrated): "
                        + ", ".join(smoke))

    total_cases = sum(len(b["cases"]) for b in benches)
    speedups = {}
    baseline_speedups = {}
    batch_speedups = {}
    wal_speedups = {}
    fault_overheads = {}
    serve_cases = {}
    coalesce_ratios = {}
    regressions = []
    # Throughput counters paired with their committed baselines: simulator
    # moves/sec (BENCH_sim.json) and serving QPS (BENCH_serve.json).  The
    # baselines are from a quiet Release box (see docs/PERFORMANCE.md and
    # docs/SERVING.md); a >15% dip below one is a regression.  When the
    # bench recorded a best (min-time) sample, the regression check keys on
    # it: the minimum is the least-contended observation, so it does not
    # flag runs that were merely unlucky with scheduler noise.  Regressions
    # are soft warnings by default and fatal under --strict; smoke-mode
    # timings never count.
    BASELINE_PAIRS = [
        ("moves_per_second", "best_moves_per_second",
         "baseline_moves_per_second", "moves/s"),
        ("qps", "best_qps", "baseline_qps", "QPS"),
        ("records_per_second", "best_records_per_second",
         "baseline_records_per_second", "rec/s"),
    ]
    for b in benches:
        for c in b["cases"]:
            counters = c.get("counters", {})
            name = f"{b['bench']}/{c['name']}"
            s = counters.get("speedup_vs_seed")
            if s is not None:
                speedups[name] = s
            for value_key, best_key, base_key, unit in BASELINE_PAIRS:
                base = counters.get(base_key)
                value = counters.get(value_key)
                if base and value:
                    baseline_speedups[name] = value / base
                    gate = counters.get(best_key) or value
                    if not b["smoke"] and gate < 0.85 * base:
                        regressions.append(
                            f"{name}: {gate:.3g} {unit} is "
                            f"{gate / base:.2f}x the committed baseline "
                            f"({base:.3g}) -- >15% regression")
            # Batch-vs-scalar pairs from bench_sim_batch: the batch backend
            # exists to beat the scalar engine on replica bursts, so a
            # non-smoke ratio below 1.0 is a regression, and a verdict
            # mismatch (batch and scalar runs disagreeing on any replica) is
            # a correctness failure regardless of timing mode.
            ratio = counters.get("batch_vs_scalar")
            if ratio is not None:
                batch_speedups[name] = ratio
                if not b["smoke"] and ratio < 1.0:
                    regressions.append(
                        f"{name}: batch backend is {ratio:.2f}x the scalar "
                        f"engine -- slower than what it replaces")
            identical = counters.get("verdicts_identical")
            if identical is not None and identical != 1:
                regressions.append(
                    f"{name}: batch and scalar verdicts DIVERGE")
            # The WAL store's acceptance bar (bench_store): group-committed
            # WAL appends must run >= 10x the per-record-durable JSONL
            # writer it replaced, at matched durability.
            wal_ratio = counters.get("wal_vs_jsonl")
            if wal_ratio is not None:
                wal_speedups[name] = wal_ratio
                if not b["smoke"] and wal_ratio < 10.0:
                    regressions.append(
                        f"{name}: WAL commit is only {wal_ratio:.1f}x the "
                        f"durable JSONL writer -- below the 10x bar")
            # Fault-hook overhead (bench_fault): an attached-but-disabled
            # FaultPlan must route to the fault-free engine, so its
            # moves/sec must stay within 2% of running with no plan at all.
            fault_ratio = counters.get("zero_fault_overhead")
            if fault_ratio is not None:
                fault_overheads[name] = fault_ratio
                if not b["smoke"] and fault_ratio < 0.98:
                    regressions.append(
                        f"{name}: zero-fault plan runs at "
                        f"{fault_ratio:.3f}x the plan-free engine -- the "
                        f"disabled fault hooks cost more than 2%")
            # Serving table: every case carrying a p99 latency lands in a
            # dedicated section.  Tail latency on a shared runner is far
            # noisier than the min-time throughput samples, so a p99 more
            # than 25% over its committed baseline is a soft warning only --
            # it never fails --strict.
            p99 = counters.get("p99_latency_us")
            if p99 is not None:
                serve_cases[name] = {
                    "qps": counters.get("qps"),
                    "p50_latency_us": counters.get("p50_latency_us"),
                    "p99_latency_us": p99,
                }
                base_p99 = counters.get("baseline_p99_latency_us")
                if base_p99 and not b["smoke"] and p99 > 1.25 * base_p99:
                    warnings.append(
                        f"{name}: p99 latency {p99:.0f}us is "
                        f"{p99 / base_p99:.2f}x the committed baseline "
                        f"({base_p99:.0f}us) -- >25% tail regression "
                        f"(non-fatal)")
            # The micro-batching acceptance bar (bench_serve): a coalesced
            # single-seed RUN_ELECT burst must sustain >= 3x the QPS of the
            # same burst with the coalescing window disabled (32
            # connections, one worker).
            coalesce = counters.get("coalesce_vs_sequential")
            if coalesce is not None:
                coalesce_ratios[name] = coalesce
                if not b["smoke"] and coalesce < 3.0:
                    regressions.append(
                        f"{name}: coalesced burst is only {coalesce:.2f}x "
                        f"the uncoalesced QPS -- below the 3x bar")
    warnings.extend(regressions)

    summary = {
        "config_hashes": hashes,
        "benches": len(benches),
        "cases": total_cases,
        "warnings": warnings,
        "speedups_vs_seed": speedups,
        "speedups_vs_baseline": baseline_speedups,
        "batch_vs_scalar": batch_speedups,
        "wal_vs_jsonl": wal_speedups,
        "zero_fault_overhead": fault_overheads,
        "serve": serve_cases,
        "coalesce_vs_sequential": coalesce_ratios,
        "campaigns": campaigns,
        "campaign_tasks": {
            "tasks": sum(c["tasks"] for c in campaigns),
            "ok": sum(c["ok"] for c in campaigns),
            "failed": sum(c["failed"] for c in campaigns),
            "timeout": sum(c["timeout"] for c in campaigns),
            "retries": sum(c["retries"] for c in campaigns),
        },
        "files": benches,
    }
    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")

    print(f"bench_summary: {len(benches)} files, {total_cases} cases, "
          f"{len(campaigns)} campaign store(s) -> {args.out}")
    for c in campaigns:
        print(f"  campaign {c['campaign'] or '?'}: {c['tasks']} tasks "
              f"({c['ok']} ok, {c['failed']} failed, {c['timeout']} timeout, "
              f"{c['retries']} retries)")
    for w in warnings:
        print(f"  WARNING: {w}")
    if speedups:
        print("  speedup_vs_seed:")
        for k, v in sorted(speedups.items()):
            print(f"    {k:48s} {v:7.2f}x")
    if baseline_speedups:
        print("  speedup_vs_baseline (committed baselines):")
        for k, v in sorted(baseline_speedups.items()):
            print(f"    {k:48s} {v:7.2f}x")
    if batch_speedups:
        print("  batch_vs_scalar (lockstep backend vs scalar engine):")
        for k, v in sorted(batch_speedups.items()):
            print(f"    {k:48s} {v:7.2f}x")
    if wal_speedups:
        print("  wal_vs_jsonl (group-committed WAL vs durable JSONL):")
        for k, v in sorted(wal_speedups.items()):
            print(f"    {k:48s} {v:7.2f}x")
    if fault_overheads:
        print("  zero_fault_overhead (disabled FaultPlan vs no plan):")
        for k, v in sorted(fault_overheads.items()):
            print(f"    {k:48s} {v:7.2f}x")
    if serve_cases:
        print("  serve (throughput and tail latency):")
        for k, v in sorted(serve_cases.items()):
            qps = f"{v['qps']:10.0f}" if v["qps"] is not None else "         -"
            p50 = (f"{v['p50_latency_us']:8.1f}"
                   if v["p50_latency_us"] is not None else "       -")
            print(f"    {k:48s} {qps} QPS  p50 {p50}us  "
                  f"p99 {v['p99_latency_us']:8.1f}us")
    if coalesce_ratios:
        print("  coalesce_vs_sequential (micro-batched vs per-request):")
        for k, v in sorted(coalesce_ratios.items()):
            print(f"    {k:48s} {v:7.2f}x")
    if args.strict and regressions:
        print(f"bench_summary: --strict: {len(regressions)} regression(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
