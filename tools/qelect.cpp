// qelect: the unified campaign CLI.
//
//   qelect run <spec.json | builtin> [engine flags]   start / continue
//   qelect resume <store>            [engine flags]   continue from a store
//   qelect status <store>                             progress + failures
//   qelect report <store> [--json F]                  paper-table report
//   qelect export <store> [--out F]                   store -> JSONL text
//   qelect compact <store>                            snapshot + trim log
//   qelect tasks  <spec.json | builtin>               print the expansion
//   qelect list                                       built-in catalog
//
// `run` is idempotent: it loads the store first and only executes tasks
// without a terminal record, so run and resume differ only in where the
// spec comes from (resume reads it back out of the store header).
// Stores are binary WAL files (see docs/STORAGE.md); `export` emits the
// legacy JSONL text, byte-identical to what the pre-WAL store wrote for
// deterministic runs.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "qelect/campaign/builtin.hpp"
#include "qelect/campaign/engine.hpp"
#include "qelect/campaign/report.hpp"
#include "qelect/campaign/spec.hpp"
#include "qelect/campaign/task.hpp"
#include "qelect/trace/jsonl_sink.hpp"
#include "qelect/util/assert.hpp"
#include "serve_common.hpp"

namespace {

using namespace qelect;
using campaign::CampaignSpec;
using campaign::EngineOptions;

int usage() {
  std::fprintf(
      stderr,
      "usage: qelect <command> [args]\n"
      "\n"
      "  run <spec.json|builtin> [flags]   run (or continue) a campaign\n"
      "  resume <store> [flags]            continue from a result store\n"
      "  status <store>                    progress and failure summary\n"
      "  report <store> [--json FILE]      workload-specific report (--json\n"
      "                                    writes the degradation survival\n"
      "                                    matrix as JSON)\n"
      "  export <store> [--out FILE]       dump the store as JSONL text\n"
      "  compact <store>                   snapshot + reset the WAL tail\n"
      "  tasks <spec.json|builtin>         print the task expansion\n"
      "  list                              built-in campaign catalog\n"
      "  serve [flags]                     run the qelectd query server\n"
      "  query <opcode> [flags]            one request against a server\n"
      "\n"
      "engine flags (run/resume):\n"
      "  --store PATH            result store (default campaign_<name>/results.qws)\n"
      "  --shards N              worker shards (default: hardware concurrency)\n"
      "  --retries N             attempts beyond the first per task\n"
      "  --timeout-seconds S     cooperative per-attempt deadline\n"
      "  --backend B             scalar | batch (override spec.backend)\n"
      "  --deterministic         zero durations (byte-reproducible stores)\n"
      "  --stop-after N          commit N tasks then stop (simulated kill)\n"
      "  --progress-jsonl PATH   stream progress events to a JSONL trace\n"
      "  --echo N                status line every N commits (default 20)\n"
      "  --compact-every N       auto-snapshot after N appended records\n"
      "                          (default 131072; 0 disables)\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QELECT_CHECK(in.good(), "cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// A builtin name resolves from the catalog; anything else is a JSON file.
CampaignSpec resolve_spec(const std::string& arg) {
  if (campaign::is_builtin(arg)) return campaign::builtin_spec(arg);
  return CampaignSpec::from_json_text(read_file(arg));
}

struct EngineFlags {
  std::string store;
  std::string progress_jsonl;
  EngineOptions options;
};

/// Parses engine flags from argv[from..); throws CheckError on unknown or
/// malformed flags.
EngineFlags parse_engine_flags(int argc, char** argv, int from) {
  EngineFlags flags;
  flags.options.echo_every = 20;
  flags.options.compact_every = 131072;
  auto value = [&](int& i) -> std::string {
    QELECT_CHECK(i + 1 < argc,
                 std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = from; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--store") {
      flags.store = value(i);
    } else if (flag == "--shards") {
      flags.options.shards = static_cast<unsigned>(std::stoul(value(i)));
    } else if (flag == "--retries") {
      flags.options.retries = std::stoi(value(i));
    } else if (flag == "--timeout-seconds") {
      flags.options.timeout_seconds = std::stod(value(i));
    } else if (flag == "--backend") {
      flags.options.backend = value(i);
      QELECT_CHECK(flags.options.backend == "scalar" ||
                       flags.options.backend == "batch",
                   "--backend must be 'scalar' or 'batch'");
    } else if (flag == "--deterministic") {
      flags.options.deterministic = true;
    } else if (flag == "--stop-after") {
      flags.options.stop_after = std::stoul(value(i));
    } else if (flag == "--progress-jsonl") {
      flags.progress_jsonl = value(i);
    } else if (flag == "--echo") {
      flags.options.echo_every = std::stoul(value(i));
    } else if (flag == "--compact-every") {
      flags.options.compact_every = std::stoul(value(i));
    } else {
      throw CheckError("unknown flag '" + flag + "'");
    }
  }
  return flags;
}

int run_with(const CampaignSpec& spec, EngineFlags flags) {
  if (flags.store.empty()) {
    flags.store = "campaign_" + spec.name + "/results.qws";
  }
  std::unique_ptr<trace::JsonlSink> progress;
  if (!flags.progress_jsonl.empty()) {
    progress = std::make_unique<trace::JsonlSink>(flags.progress_jsonl);
    flags.options.progress = progress.get();
  }
  std::printf("campaign %s -> %s\n", spec.name.c_str(),
              flags.store.c_str());
  const auto result = campaign::run_campaign(spec, flags.store,
                                             flags.options);
  std::printf(
      "%s: %zu tasks, %zu skipped (already done), %zu executed "
      "(%zu ok, %zu failed, %zu timeout, %zu retries) in %.2fs%s\n",
      result.complete() ? "done" : "stopped", result.total, result.skipped,
      result.executed, result.ok, result.failed, result.timeout,
      result.retried, result.wall_seconds,
      result.stopped_early ? " [stopped early by --stop-after]" : "");
  if (result.complete()) {
    std::printf("\n");
    campaign::print_report(flags.store);
  }
  return result.failed + result.timeout > 0 ? 1 : 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 3) return usage();
  const CampaignSpec spec = resolve_spec(argv[2]);
  return run_with(spec, parse_engine_flags(argc, argv, 3));
}

int cmd_resume(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string store_path = argv[2];
  const auto store = campaign::load_store(store_path);
  QELECT_CHECK(store.exists && store.has_header,
               "no resumable store at " + store_path);
  const CampaignSpec spec =
      CampaignSpec::from_json_text(store.header.spec_json);
  EngineFlags flags = parse_engine_flags(argc, argv, 3);
  flags.store = store_path;
  return run_with(spec, std::move(flags));
}

int cmd_export(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string store_path = argv[2];
  std::string out_path;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--out") {
      QELECT_CHECK(i + 1 < argc, "--out needs a value");
      out_path = argv[++i];
    } else {
      throw CheckError("unknown flag '" + flag + "'");
    }
  }
  const auto store = campaign::load_store(store_path);
  QELECT_CHECK(store.exists && store.has_header,
               "no store at " + store_path);
  const std::string text = campaign::store_to_jsonl(store);
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    QELECT_CHECK(out.good(), "cannot write " + out_path);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    QELECT_CHECK(out.good(), "write to " + out_path + " failed");
    std::fprintf(stderr, "exported %zu records to %s\n",
                 store.records.size(), out_path.c_str());
  }
  return 0;
}

int cmd_compact(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string store_path = argv[2];
  const auto store = campaign::load_store(store_path);
  QELECT_CHECK(store.exists && store.has_header,
               "no store at " + store_path);
  campaign::StoreWriter writer(store_path, store.header);
  writer.compact();
  std::printf("compacted %s: %zu records -> generation %llu snapshot\n",
              store_path.c_str(), writer.record_count(),
              static_cast<unsigned long long>(writer.generation()));
  return 0;
}

int cmd_tasks(int argc, char** argv) {
  if (argc < 3) return usage();
  const CampaignSpec spec = resolve_spec(argv[2]);
  const auto tasks = campaign::expand_tasks(spec);
  for (const auto& task : tasks) std::printf("%s\n", task.key.c_str());
  std::fprintf(stderr, "%zu tasks\n", tasks.size());
  return 0;
}

int cmd_list() {
  for (const std::string& name : campaign::builtin_names()) {
    const CampaignSpec spec = campaign::builtin_spec(name);
    std::printf("%-14s %zu tasks  %s\n", name.c_str(),
                campaign::expand_tasks(spec).size(),
                spec.workload.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "run") return cmd_run(argc, argv);
    if (command == "resume") return cmd_resume(argc, argv);
    if (command == "status") {
      if (argc < 3) return usage();
      campaign::print_status(argv[2]);
      return 0;
    }
    if (command == "report") {
      if (argc < 3) return usage();
      std::string json_path;
      for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--json") {
          QELECT_CHECK(i + 1 < argc, "--json needs a value");
          json_path = argv[++i];
        } else {
          throw CheckError("unknown flag '" + flag + "'");
        }
      }
      campaign::print_report(argv[2], json_path);
      return 0;
    }
    if (command == "export") return cmd_export(argc, argv);
    if (command == "compact") return cmd_compact(argc, argv);
    if (command == "tasks") return cmd_tasks(argc, argv);
    if (command == "list") return cmd_list();
    if (command == "serve") return tools::serve_main(argc, argv, 2);
    if (command == "query") return tools::query_main(argc, argv, 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qelect %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return usage();
}
